//! Property tests for the live counting-network runtime: for every width
//! in {2, 4, 8} and *any* per-thread op-count sequence, the quiescent
//! slot counts of [`CountingNetwork::traverse`] satisfy the step
//! property, and their sorted multiset matches the single-`AtomicUsize`
//! oracle — `N` tokens on `w` wires must land as `⌈N/w⌉` on `N mod w`
//! wires and `⌊N/w⌋` on the rest, exactly like slices of one shared
//! counter. Real `std::thread`s, so the schedules are whatever the OS
//! produces; the deterministic schedules live in `interleave.rs`.

use proptest::prelude::*;
use snet_runtime::{check_step_property, CountingNetwork, Layout};

/// The sorted-descending slot profile `N` increments of one shared
/// counter would leave across `width` modular slots.
fn single_atomic_profile(total: usize, width: usize) -> Vec<u64> {
    (0..width).map(|i| ((total + width - 1 - i) / width) as u64).collect()
}

/// Drives `ops[t]` traversals from thread `t`, all concurrently, then
/// returns the claimed values.
fn hammer(net: &CountingNetwork, ops: &[usize]) -> Vec<usize> {
    std::thread::scope(|s| {
        let handles: Vec<_> = ops
            .iter()
            .map(|&n| s.spawn(move || (0..n).map(|_| net.traverse()).collect::<Vec<_>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn quiescent_counts_step_and_match_single_atomic_oracle(
        width_pow in 1usize..=3,
        ops in proptest::collection::vec(0usize..48, 1..5),
        periodic in any::<bool>(),
    ) {
        let width = 1 << width_pow;
        let net = if periodic {
            CountingNetwork::periodic(width)
        } else {
            CountingNetwork::bitonic(width)
        };
        let mut claimed = hammer(&net, &ops);
        let total: usize = ops.iter().sum();

        // Claimed values are exactly 0..total: no gaps, no duplicates.
        claimed.sort_unstable();
        prop_assert_eq!(&claimed, &(0..total).collect::<Vec<_>>());

        // Quiescent step property.
        let counts = net.slot_counts();
        prop_assert!(check_step_property(&counts).is_ok(),
            "step property violated: {:?}", counts);

        // Sorted multiset of slot counts == single-atomic oracle.
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(sorted, single_atomic_profile(total, width));
    }

    #[test]
    fn quiescent_oracle_matches_runtime_for_any_entry_pattern(
        width_pow in 1usize..=3,
        entries in proptest::collection::vec(0usize..64, 0..40),
    ) {
        // Single-threaded but arbitrary entry wires: the live runtime's
        // slot counts must equal the pure count-propagation oracle.
        let width = 1 << width_pow;
        let layout = Layout::bitonic(width);
        let net = CountingNetwork::new(layout.clone());
        let mut inputs = vec![0u64; width];
        for &e in &entries {
            net.traverse_from(e % width);
            inputs[e % width] += 1;
        }
        prop_assert_eq!(net.slot_counts(), layout.quiescent_counts(&inputs));
    }
}
