//! Differential tests pinning the runtime's balancer layouts to the rest
//! of the workspace:
//!
//! * the bitonic counting network is comparator-for-comparator the
//!   `snet_sorters::bitonic_flip` network (same pairs, same layers, same
//!   orientation) — the runtime does not grow a private topology;
//! * the periodic layout is `snet_sorters::periodic_balanced`, and its
//!   circuit form round-trips through `snet_topology::recognize` as an
//!   iterated reverse delta (the EXPERIMENTS.md "bonus finding"), tying
//!   the counting networks back to the paper's network class;
//! * direction matters: normalizing `bitonic_circuit`'s `CmpRev`
//!   comparators does **not** yield a counting network — the quiescent
//!   oracle exhibits a concrete step violation. This is the trap the
//!   `bitonic_flip` construction exists to avoid.

use snet_core::element::{Element, ElementKind};
use snet_core::network::ComparatorNetwork;
use snet_runtime::{check_step_property, Layout};
use snet_sorters::{bitonic_circuit, bitonic_flip, periodic_balanced};
use snet_topology::recognize::recognize_iterated;

/// Level-by-level comparator equality (order within a level is
/// normalized; it is a set, not a sequence).
fn assert_same_comparators(a: &ComparatorNetwork, b: &ComparatorNetwork) {
    assert_eq!(a.wires(), b.wires());
    assert_eq!(a.depth(), b.depth());
    for (la, lb) in a.levels().iter().zip(b.levels()) {
        assert!(la.route.is_none() && lb.route.is_none());
        let mut ea = la.elements.clone();
        let mut eb = lb.elements.clone();
        ea.sort_by_key(|e| (e.a, e.b));
        eb.sort_by_key(|e| (e.a, e.b));
        assert_eq!(ea, eb);
    }
}

#[test]
fn bitonic_layout_is_bitonic_flip_comparator_for_comparator() {
    for width in [2usize, 4, 8, 16, 32] {
        let layout = Layout::bitonic(width);
        assert_same_comparators(&layout.to_network(), &bitonic_flip(width));
        // And the extraction round-trips: network → layout → network.
        assert_eq!(Layout::from_network(&layout.to_network()).unwrap(), layout);
    }
}

#[test]
fn periodic_layout_is_periodic_balanced_comparator_for_comparator() {
    for width in [2usize, 4, 8, 16] {
        let layout = Layout::periodic(width);
        assert_same_comparators(&layout.to_network(), &periodic_balanced(width));
    }
}

#[test]
fn periodic_layout_round_trips_through_recognize() {
    for width in [4usize, 8, 16] {
        let l = width.trailing_zeros() as usize;
        let net = Layout::periodic(width).to_network();
        let ird = recognize_iterated(&net)
            .expect("periodic balanced layout is an iterated reverse delta");
        assert_eq!(ird.block_count(), l, "one reverse-delta block per pass");
        // The recognized form rebuilds the identical circuit (level
        // order preserved; order *within* a level is a set), so the
        // balancer layout survives the class round-trip unchanged.
        assert_same_comparators(&ird.to_network(), &net);
        let round_tripped = Layout::from_network(&ird.to_network()).unwrap();
        let sorted = |l: &Layout| -> Vec<Vec<(u32, u32)>> {
            l.layers()
                .iter()
                .map(|layer| {
                    let mut pairs = layer.clone();
                    pairs.sort_unstable();
                    pairs
                })
                .collect()
        };
        assert_eq!(sorted(&round_tripped), sorted(&Layout::periodic(width)));
    }
}

#[test]
fn normalized_bitonic_circuit_is_not_a_counting_network() {
    // Strip the directions off the classic circuit: every CmpRev(a, b)
    // becomes Cmp(min, max). The result still *sorts* nothing anymore —
    // but more to the point here, it fails the counting-network step
    // property on a concrete input-count vector, which is why
    // Layout::bitonic is built from bitonic_flip instead.
    let circuit = bitonic_circuit(4);
    let mut net = ComparatorNetwork::empty(4);
    for level in circuit.levels() {
        let elements: Vec<Element> = level
            .elements
            .iter()
            .map(|e| {
                assert!(matches!(e.kind, ElementKind::Cmp | ElementKind::CmpRev));
                Element::cmp(e.a.min(e.b), e.a.max(e.b))
            })
            .collect();
        net.push_elements(elements).unwrap();
    }
    let layout = Layout::from_network(&net).expect("normalized circuit is unidirectional");
    // One token on wire 1 and one on wire 3: a counting network must end
    // with counts [1, 1, 0, 0]; the normalized circuit routes both
    // tokens' parity the wrong way and lands on [1, 0, 1, 0].
    let counts = layout.quiescent_counts(&[0, 1, 0, 1]);
    let violation = check_step_property(&counts)
        .expect_err("direction-normalized bitonic circuit must fail the step property");
    assert_eq!(counts, vec![1, 0, 1, 0]);
    assert_eq!((violation.i, violation.j), (1, 2));

    // Sanity: the flip construction handles the very same input.
    let good = Layout::bitonic(4).quiescent_counts(&[0, 1, 0, 1]);
    assert_eq!(good, vec![1, 1, 0, 0]);
}
