//! The balancer: a comparator with the values removed.
//!
//! A comparator routes the *smaller* value to its top output; a balancer
//! routes *alternating tokens* to its top output. Both are instances of
//! the same switching element — which is exactly why the counting-network
//! literature reuses sorting-network topologies, and why this crate can
//! build its networks straight from `snet_sorters::bitonic_flip` /
//! `periodic_balanced` layer descriptions.

use std::sync::atomic::{AtomicU64, Ordering};

/// A single lock-free balancer.
///
/// The entire state is one `AtomicU64` **visit counter**; the toggle is
/// its parity. [`Balancer::traverse`] performs `fetch_add(1)` and routes
/// by the parity of the *previous* value, so the first token exits top,
/// the second bottom, and so on — the fetch-and-flip semantics of
/// Aspnes–Herlihy–Shavit, with the visit count (needed for the
/// per-balancer contention histograms) folded into the same word instead
/// of a second counter.
///
/// `Ordering::Relaxed` is deliberate and sufficient: the step property of
/// a balancer network is a function of *how many* tokens crossed each
/// balancer, never of cross-balancer visibility order. All we need is the
/// atomicity of the read-modify-write itself — two tokens must not
/// observe the same toggle value — and relaxed RMWs guarantee that. (The
/// interleaving explorer in [`crate::sched`] demonstrates the converse:
/// its `Racy` model splits the RMW into a separate read and write, and
/// the lost update is caught as a step-property violation.)
pub struct Balancer {
    visits: AtomicU64,
}

/// Exit side of a balancer traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// The token leaves on the top (lower-indexed) output wire.
    Top,
    /// The token leaves on the bottom output wire.
    Bottom,
}

impl Balancer {
    /// A fresh balancer whose first token will exit [`Exit::Top`].
    pub const fn new() -> Self {
        Balancer { visits: AtomicU64::new(0) }
    }

    /// Pass one token through: flip the toggle, return the exit side.
    #[inline]
    pub fn traverse(&self) -> Exit {
        if self.visits.fetch_add(1, Ordering::Relaxed) & 1 == 0 {
            Exit::Top
        } else {
            Exit::Bottom
        }
    }

    /// Total tokens that have crossed this balancer.
    ///
    /// Only meaningful as an exact figure in a quiescent state (no thread
    /// inside [`Balancer::traverse`]); mid-flight it is a monotone lower
    /// bound, which is all the observability histograms need.
    #[inline]
    pub fn visits(&self) -> u64 {
        self.visits.load(Ordering::Relaxed)
    }
}

impl Default for Balancer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Balancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Balancer").field("visits", &self.visits()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_starting_top() {
        let b = Balancer::new();
        assert_eq!(b.traverse(), Exit::Top);
        assert_eq!(b.traverse(), Exit::Bottom);
        assert_eq!(b.traverse(), Exit::Top);
        assert_eq!(b.visits(), 3);
    }

    #[test]
    fn concurrent_tokens_split_evenly() {
        let b = Balancer::new();
        let tops: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..1000).filter(|_| b.traverse() == Exit::Top).count() as u64))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // 4000 tokens, even: exactly half exit top regardless of interleaving.
        assert_eq!(tops, 2000);
        assert_eq!(b.visits(), 4000);
    }
}
