//! Balancer networks built from comparator-network layer descriptions.
//!
//! A [`Layout`] is the topology only — which wire pairs meet a balancer
//! at which layer — extracted from any *unidirectional* comparator
//! network (`ElementKind::Cmp`, `a < b`, no inter-level routes). The two
//! stock constructors reuse the workspace's sorter constructions:
//!
//! * [`Layout::bitonic`] — `snet_sorters::bitonic_flip`, the
//!   Aspnes–Herlihy–Shavit bitonic counting network. Note the direction
//!   *matters*: the classic `bitonic_circuit` with its `CmpRev` levels
//!   normalized to plain comparators is **not** a counting network (the
//!   differential tests pin this down);
//! * [`Layout::periodic`] — `snet_sorters::periodic_balanced`, the
//!   Dowd–Perl–Rudolph–Saks periodic counting network.
//!
//! [`CountingNetwork`] instantiates a layout with one [`Balancer`] per
//! comparator plus one atomic counter slot per output wire, and
//! [`CountingNetwork::traverse`] claims globally unique counter values.

use crate::balancer::{Balancer, Exit};
use snet_core::element::{Element, ElementKind};
use snet_core::network::ComparatorNetwork;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pads its contents to a cache line so neighbouring balancers/slots in
/// the backing `Vec` do not false-share under contention.
#[repr(align(64))]
struct CacheLine<T>(T);

/// A balancer-network topology: `width` wires, `layers[l]` the wire pairs
/// `(a, b)` (`a < b`, `a` the top output) joined by a balancer at layer
/// `l`. Wires a layer does not mention pass through untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    width: usize,
    layers: Vec<Vec<(u32, u32)>>,
}

/// Why a comparator network cannot be (or a raw layer list does not
/// describe) a balancer layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A level contains a `CmpRev`/`Pass`/`Swap` element; balancers have
    /// no direction to reverse, so only plain `Cmp` maps onto them.
    NonComparator {
        /// Offending level index.
        layer: usize,
    },
    /// A level carries an inter-level route; balancer tokens follow the
    /// wire they exit on, so routed networks must be flattened first.
    Routed {
        /// Offending level index.
        layer: usize,
    },
    /// A pair has `a >= b` (top output must be the lower-indexed wire).
    WireOrder {
        /// Offending level index.
        layer: usize,
    },
    /// A pair references a wire `>= width`.
    WireRange {
        /// Offending level index.
        layer: usize,
    },
    /// A wire appears in two pairs of the same layer.
    DuplicateWire {
        /// Offending level index.
        layer: usize,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::NonComparator { layer } => {
                write!(f, "layer {layer}: only plain `+` comparators map onto balancers")
            }
            LayoutError::Routed { layer } => {
                write!(f, "layer {layer}: routed networks cannot carry balancer tokens")
            }
            LayoutError::WireOrder { layer } => {
                write!(f, "layer {layer}: balancer pair must have a < b")
            }
            LayoutError::WireRange { layer } => {
                write!(f, "layer {layer}: balancer pair references a wire >= width")
            }
            LayoutError::DuplicateWire { layer } => {
                write!(f, "layer {layer}: wire appears in two balancer pairs")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Flat routing tables derived from a [`Layout`]: `pairs` numbers every
/// balancer (layer-major), `table[layer][wire]` is the index of the
/// balancer that wire enters at that layer, if any.
pub(crate) struct Routing {
    pub(crate) pairs: Vec<(u32, u32)>,
    pub(crate) table: Vec<Vec<Option<usize>>>,
}

impl Layout {
    /// Validates and wraps a raw layer list.
    pub fn new(width: usize, layers: Vec<Vec<(u32, u32)>>) -> Result<Self, LayoutError> {
        for (l, layer) in layers.iter().enumerate() {
            let mut seen = vec![false; width];
            for &(a, b) in layer {
                if a >= b {
                    return Err(LayoutError::WireOrder { layer: l });
                }
                if b as usize >= width {
                    return Err(LayoutError::WireRange { layer: l });
                }
                for w in [a as usize, b as usize] {
                    if seen[w] {
                        return Err(LayoutError::DuplicateWire { layer: l });
                    }
                    seen[w] = true;
                }
            }
        }
        Ok(Layout { width, layers })
    }

    /// Extracts the balancer layout of a unidirectional comparator
    /// network (plain `Cmp` elements, `a < b`, no routes).
    pub fn from_network(net: &ComparatorNetwork) -> Result<Self, LayoutError> {
        let mut layers = Vec::with_capacity(net.depth());
        for (l, level) in net.levels().iter().enumerate() {
            if level.route.is_some() {
                return Err(LayoutError::Routed { layer: l });
            }
            let mut layer = Vec::with_capacity(level.elements.len());
            for e in &level.elements {
                match e.kind {
                    ElementKind::Cmp => layer.push((e.a, e.b)),
                    // `Pass` carries no state and routes straight through:
                    // dropping it from the layout is behaviour-preserving.
                    ElementKind::Pass => {}
                    _ => return Err(LayoutError::NonComparator { layer: l }),
                }
            }
            layers.push(layer);
        }
        Layout::new(net.wires(), layers)
    }

    /// The Aspnes–Herlihy–Shavit bitonic counting network on `width`
    /// wires (`width` a power of two): the balancer layout of
    /// [`snet_sorters::bitonic_flip`].
    pub fn bitonic(width: usize) -> Self {
        assert!(width.is_power_of_two(), "counting networks need power-of-two width");
        Layout::from_network(&snet_sorters::bitonic_flip(width))
            .expect("bitonic_flip is unidirectional by construction")
    }

    /// The periodic balanced counting network on `width` wires: the
    /// balancer layout of [`snet_sorters::periodic_balanced`].
    pub fn periodic(width: usize) -> Self {
        assert!(width.is_power_of_two(), "counting networks need power-of-two width");
        Layout::from_network(&snet_sorters::periodic_balanced(width))
            .expect("periodic_balanced is unidirectional by construction")
    }

    /// Number of wires.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The balancer layers (pairs `(a, b)`, `a` = top output).
    pub fn layers(&self) -> &[Vec<(u32, u32)>] {
        &self.layers
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total number of balancers.
    pub fn balancer_count(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Rebuilds the comparator network this layout came from — every
    /// balancer a plain `+` comparator. Round-trips with
    /// [`Layout::from_network`] (the differential tests rely on this).
    pub fn to_network(&self) -> ComparatorNetwork {
        let mut net = ComparatorNetwork::empty(self.width);
        for layer in &self.layers {
            let elements: Vec<Element> = layer.iter().map(|&(a, b)| Element::cmp(a, b)).collect();
            net.push_elements(elements).expect("layout layers are wire-disjoint");
        }
        net
    }

    pub(crate) fn routing(&self) -> Routing {
        let mut pairs = Vec::with_capacity(self.balancer_count());
        let mut table = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let mut row = vec![None; self.width];
            for &(a, b) in layer {
                row[a as usize] = Some(pairs.len());
                row[b as usize] = Some(pairs.len());
                pairs.push((a, b));
            }
            table.push(row);
        }
        Routing { pairs, table }
    }

    /// Propagates per-wire input token counts to quiescent per-wire
    /// output counts, *without* any notion of interleaving: a balancer
    /// that received `x` tokens in total has emitted `⌈x/2⌉` on top and
    /// `⌊x/2⌋` on the bottom, whatever order they arrived in. This
    /// order-independence is what makes the quiescent behaviour of an
    /// atomic balancer network a pure function of its input counts — the
    /// soundness argument behind the [`crate::sched`] explorer's terminal
    /// checks (DESIGN.md §10).
    pub fn quiescent_counts(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.width, "one input count per wire");
        let mut counts = inputs.to_vec();
        for layer in &self.layers {
            for &(a, b) in layer {
                let x = counts[a as usize] + counts[b as usize];
                counts[a as usize] = x.div_ceil(2);
                counts[b as usize] = x / 2;
            }
        }
        counts
    }
}

/// A witness that a slot-count vector violates the step property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepViolation {
    /// Lower wire index of the offending pair.
    pub i: usize,
    /// Higher wire index of the offending pair.
    pub j: usize,
    /// Count on wire `i`.
    pub yi: u64,
    /// Count on wire `j`.
    pub yj: u64,
}

impl std::fmt::Display for StepViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step property violated: y[{}] = {} vs y[{}] = {} (need y_i >= y_j and y_i - y_j <= 1)",
            self.i, self.yi, self.j, self.yj
        )
    }
}

/// Checks the step property: for all `i < j`, `y_i >= y_j` and
/// `y_i − y_j <= 1`.
///
/// `O(n)`: adjacent non-increase gives `y_i >= y_j` for every pair, and
/// then the single comparison `y_0 − y_{n−1} <= 1` bounds every gap.
pub fn check_step_property(counts: &[u64]) -> Result<(), StepViolation> {
    for i in 0..counts.len().saturating_sub(1) {
        if counts[i] < counts[i + 1] {
            return Err(StepViolation { i, j: i + 1, yi: counts[i], yj: counts[i + 1] });
        }
    }
    if let (Some(&first), Some(&last)) = (counts.first(), counts.last()) {
        if first - last > 1 {
            return Err(StepViolation { i: 0, j: counts.len() - 1, yi: first, yj: last });
        }
    }
    Ok(())
}

thread_local! {
    /// Per-thread entry-wire cursor, seeded from the thread's stable
    /// `snet-obs` ordinal so a fleet of threads starts spread across the
    /// input wires instead of all hammering wire 0.
    static ENTRY_CURSOR: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// A live lock-free counting network: one [`Balancer`] per layout pair,
/// one atomic counter slot per output wire, each on its own cache line.
pub struct CountingNetwork {
    layout: Layout,
    pairs: Vec<(u32, u32)>,
    table: Vec<Vec<Option<usize>>>,
    balancers: Vec<CacheLine<Balancer>>,
    slots: Vec<CacheLine<AtomicU64>>,
}

impl CountingNetwork {
    /// Instantiates a layout with fresh balancers and zeroed slots.
    pub fn new(layout: Layout) -> Self {
        let Routing { pairs, table } = layout.routing();
        let balancers = (0..pairs.len()).map(|_| CacheLine(Balancer::new())).collect();
        let slots = (0..layout.width()).map(|_| CacheLine(AtomicU64::new(0))).collect();
        CountingNetwork { layout, pairs, table, balancers, slots }
    }

    /// A bitonic counting network ([`Layout::bitonic`]).
    pub fn bitonic(width: usize) -> Self {
        CountingNetwork::new(Layout::bitonic(width))
    }

    /// A periodic balanced counting network ([`Layout::periodic`]).
    pub fn periodic(width: usize) -> Self {
        CountingNetwork::new(Layout::periodic(width))
    }

    /// The underlying topology.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Number of wires (= counter slots).
    pub fn width(&self) -> usize {
        self.layout.width()
    }

    /// Claims the next counter value, entering on this thread's
    /// round-robin input wire. Wait-free: `depth + 1` relaxed RMWs,
    /// no retries.
    pub fn traverse(&self) -> usize {
        let wire = ENTRY_CURSOR.with(|c| {
            let mut v = c.get();
            if v == u64::MAX {
                v = snet_obs::thread_ordinal();
            }
            c.set(v.wrapping_add(1));
            v as usize % self.width()
        });
        self.traverse_from(wire)
    }

    /// Claims the next counter value, entering on wire `wire`.
    ///
    /// The token follows balancer exits layer by layer, then claims a
    /// slot on its output wire: value = `exit_wire + width × k` where `k`
    /// is how many tokens already exited on that wire. When quiescent,
    /// the step property guarantees the claimed values are exactly
    /// `0..total` with no gaps or duplicates.
    pub fn traverse_from(&self, wire: usize) -> usize {
        assert!(wire < self.width(), "entry wire out of range");
        let mut wire = wire;
        for row in &self.table {
            if let Some(b) = row[wire] {
                let (a, bot) = self.pairs[b];
                wire = match self.balancers[b].0.traverse() {
                    Exit::Top => a as usize,
                    Exit::Bottom => bot as usize,
                };
            }
        }
        let prev = self.slots[wire].0.fetch_add(1, Ordering::Relaxed);
        wire + self.width() * prev as usize
    }

    /// Per-wire slot counts (exact when quiescent).
    pub fn slot_counts(&self) -> Vec<u64> {
        self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).collect()
    }

    /// Total tokens that have fully traversed the network.
    pub fn total(&self) -> u64 {
        self.slot_counts().iter().sum()
    }

    /// Checks the step property of the current slot counts. Only
    /// meaningful when quiescent — mid-flight tokens may sit between
    /// layers, and the step property is a quiescent-state guarantee.
    pub fn check_step(&self) -> Result<(), StepViolation> {
        check_step_property(&self.slot_counts())
    }

    /// Emits traversal totals and a per-balancer visit histogram to the
    /// installed `snet-obs` sinks:
    ///
    /// * counter `runtime.traversals` — completed traversals;
    /// * counter `runtime.balancer_ops` — total balancer visits (the
    ///   contention volume the network absorbed);
    /// * histogram `runtime.balancer.visits` — visits per balancer (a
    ///   flat histogram means the topology spread load evenly);
    /// * gauge `runtime.balancers` — balancer count of the live layout.
    pub fn emit_obs(&self) {
        snet_obs::gauge("runtime.balancers", self.balancers.len() as f64);
        snet_obs::counter("runtime.traversals", self.total());
        let hist = snet_obs::Histogram::new();
        let mut ops = 0u64;
        for b in &self.balancers {
            let v = b.0.visits();
            ops += v;
            hist.record(v);
        }
        snet_obs::counter("runtime.balancer_ops", ops);
        snet_obs::hist("runtime.balancer.visits", &hist.snapshot());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_traversals_count_perfectly() {
        for net in [CountingNetwork::bitonic(8), CountingNetwork::periodic(8)] {
            let mut claimed: Vec<usize> = (0..100).map(|_| net.traverse()).collect();
            claimed.sort_unstable();
            assert_eq!(claimed, (0..100).collect::<Vec<_>>());
            net.check_step().expect("quiescent step property");
        }
    }

    #[test]
    fn quiescent_counts_match_live_runtime() {
        let layout = Layout::bitonic(4);
        let net = CountingNetwork::new(layout.clone());
        // Deliberately lopsided arrivals: 7 tokens on wire 0, 3 on wire 2.
        let mut inputs = vec![0u64; 4];
        for _ in 0..7 {
            net.traverse_from(0);
            inputs[0] += 1;
        }
        for _ in 0..3 {
            net.traverse_from(2);
            inputs[2] += 1;
        }
        assert_eq!(net.slot_counts(), layout.quiescent_counts(&inputs));
        net.check_step().expect("step property under skewed input");
    }

    #[test]
    fn step_property_checker_finds_witnesses() {
        assert!(check_step_property(&[3, 2, 2, 2]).is_ok());
        assert!(check_step_property(&[]).is_ok());
        let v = check_step_property(&[1, 2]).unwrap_err();
        assert_eq!((v.i, v.j), (0, 1));
        let v = check_step_property(&[3, 2, 2, 1]).unwrap_err();
        assert_eq!((v.i, v.j), (0, 3));
    }

    #[test]
    fn from_network_rejects_directions_and_routes() {
        // The classic bitonic circuit has CmpRev levels: not a balancer layout.
        let err = Layout::from_network(&snet_sorters::bitonic_circuit(4)).unwrap_err();
        assert!(matches!(err, LayoutError::NonComparator { .. }));
    }

    #[test]
    fn layout_round_trips_through_network_form() {
        for layout in [Layout::bitonic(8), Layout::periodic(8)] {
            assert_eq!(Layout::from_network(&layout.to_network()).unwrap(), layout);
        }
    }

    #[test]
    fn concurrent_traversals_preserve_step_property_and_uniqueness() {
        let net = CountingNetwork::bitonic(8);
        let mut claimed: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..500).map(|_| net.traverse()).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        claimed.sort_unstable();
        assert_eq!(claimed, (0..2000).collect::<Vec<_>>());
        net.check_step().expect("quiescent step property");
    }
}
