//! # snet-runtime — the network as a live concurrent object
//!
//! Everything else in this workspace treats a comparator network as a
//! *static program*: wires carry values, comparators sort them, and the
//! interesting questions are combinatorial (depth lower bounds, adversary
//! refutations). This crate flips the viewpoint the way Aspnes, Herlihy
//! and Shavit did: keep the *topology* — the same bitonic and periodic
//! layer structure `snet-sorters` builds — but let **threads** travel the
//! wires instead of values. Each comparator becomes a [`Balancer`]: a
//! single-word toggle that routes alternating tokens to its top and
//! bottom output wire. A network of balancers whose quiescent output
//! counts always satisfy the *step property* (`y_i − y_j ∈ {0, 1}` for
//! `i < j`) is a **counting network**: `width` independent counter slots
//! that together behave like one shared counter, with contention spread
//! across `O(n lg²n)` balancers instead of one hot cache line.
//!
//! Two layers:
//!
//! * [`CountingNetwork`] (and [`Layout`]) — the live runtime. Real
//!   threads call [`CountingNetwork::traverse`] to claim globally unique
//!   counter values; [`CountingNetwork::check_step`] inspects the
//!   quiescent state. Instrumented via `snet-obs` (traversal counters,
//!   per-balancer visit histograms).
//! * [`sched`] — a dependency-free deterministic interleaving explorer
//!   (loom-style, hand-rolled because this build is offline). Balancer
//!   operations are the only shared-memory accesses, so they are the only
//!   yield points; exhaustive DFS over all interleavings is feasible for
//!   small configurations and *sound* (see DESIGN.md §10), and seeded
//!   random sampling covers larger ones. Every counterexample is
//!   replayable from its recorded decision string.
//!
//! ## Example
//!
//! ```
//! use snet_runtime::CountingNetwork;
//!
//! let net = CountingNetwork::bitonic(4);
//! let mut claimed: Vec<usize> = (0..10).map(|_| net.traverse()).collect();
//! claimed.sort_unstable();
//! assert_eq!(claimed, (0..10).collect::<Vec<_>>()); // a perfect shared counter
//! assert!(net.check_step().is_ok());
//! ```

#![warn(missing_docs)]

pub mod balancer;
pub mod network;
pub mod sched;

pub use balancer::Balancer;
pub use network::{check_step_property, CountingNetwork, Layout, LayoutError, StepViolation};
pub use sched::{BalancerModel, ExploreReport, Explorer, Violation};
