//! Deterministic interleaving exploration for balancer networks —
//! loom-style, hand-rolled (this build is offline, so no loom).
//!
//! The runtime's only shared-memory accesses are the balancer RMWs and
//! the final slot claim, so a *virtual-thread* simulation whose yield
//! points are exactly those operations covers every behaviour the real
//! `std::thread` runtime can exhibit: any real execution maps to the
//! interleaving that orders its atomic operations. That makes exhaustive
//! DFS over all interleavings a sound model check for small
//! configurations (2–3 threads, width 2–4), and seeded random schedule
//! sampling a cheap probe for larger ones.
//!
//! Two balancer models:
//!
//! * [`BalancerModel::Atomic`] — the real semantics: toggle flip is one
//!   indivisible fetch-and-add, as in [`crate::Balancer`];
//! * [`BalancerModel::Racy`] — a deliberately broken balancer that reads
//!   the toggle and writes it back as *two separate steps*, so two
//!   tokens can observe the same toggle value (a lost update) and exit
//!   on the same wire. The explorer catches this with a replayable
//!   counterexample schedule — the acceptance test for the harness
//!   itself.
//!
//! Every schedule is a **decision string**: one character per step
//! naming the virtual thread that moved (`'0'`–`'9'`, `'a'`–`'z'`,
//! `'A'`–`'Z'`). [`Explorer::replay`] re-executes a decision string
//! exactly, so any counterexample a CI run reports is reproducible
//! locally with no shared state beyond the string itself.

use crate::network::{check_step_property, Layout};

/// How simulated balancers execute their toggle update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerModel {
    /// Indivisible fetch-and-flip — the semantics of [`crate::Balancer`].
    Atomic,
    /// Read and write as two separate yield points: the classic lost
    /// update. Exists to prove the explorer can catch real atomicity
    /// bugs; never used by the live runtime.
    Racy,
}

/// One violating schedule: the decision string that reaches it and a
/// human-readable description of the failed terminal check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The schedule, one character per step ([`Explorer::replay`] takes
    /// this verbatim).
    pub decisions: String,
    /// Which terminal check failed and how.
    pub detail: String,
}

/// Outcome of an exploration or sampling run.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Complete schedules executed.
    pub schedules: u64,
    /// How many of them failed a terminal check.
    pub failing: u64,
    /// The first few failing schedules (capped at
    /// [`ExploreReport::MAX_RECORDED`]), each replayable.
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// Cap on recorded counterexamples; `failing` keeps the true count.
    pub const MAX_RECORDED: usize = 8;

    fn record(&mut self, decisions: &str, detail: String) {
        self.failing += 1;
        if self.violations.len() < Self::MAX_RECORDED {
            self.violations.push(Violation { decisions: decisions.to_string(), detail });
        }
    }
}

/// Alphabet for decision strings (thread index → character).
const THREAD_CHARS: &[u8; 62] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// One virtual thread's progress through its operation sequence.
#[derive(Debug, Clone)]
struct VThread {
    /// Index of the operation currently in flight (`== ops` when done).
    op: usize,
    /// Next layer to act in; `== depth` means the slot-claim step.
    layer: usize,
    /// Current wire.
    wire: usize,
    /// `Racy` only: toggle value read in the first half of a split RMW.
    pending: Option<u64>,
}

/// Full simulation state — small enough to clone at every DFS node.
#[derive(Debug, Clone)]
struct Sim {
    /// Per-balancer visit counts (parity = toggle), layer-major.
    toggles: Vec<u64>,
    /// Per-wire completed-exit counts.
    slots: Vec<u64>,
    /// Every claimed counter value, in claim order.
    claimed: Vec<usize>,
    threads: Vec<VThread>,
}

/// A deterministic interleaving explorer for one fixed configuration:
/// layout, virtual-thread count, operations per thread, balancer model.
pub struct Explorer {
    layout: Layout,
    threads: usize,
    ops: usize,
    model: BalancerModel,
    pairs: Vec<(u32, u32)>,
    table: Vec<Vec<Option<usize>>>,
}

impl Explorer {
    /// Builds an explorer. `threads` is capped at 62 (the decision-string
    /// alphabet); practical exhaustive runs use 2–3.
    pub fn new(layout: Layout, threads: usize, ops: usize, model: BalancerModel) -> Self {
        assert!(threads >= 1 && threads <= THREAD_CHARS.len(), "1..=62 virtual threads");
        assert!(layout.width() >= 1);
        let routing = layout.routing();
        Explorer { layout, threads, ops, model, pairs: routing.pairs, table: routing.table }
    }

    /// Entry wire for thread `t`'s `op`-th traversal: a global
    /// round-robin, so the token load spreads across input wires the way
    /// the live runtime's per-thread cursors do.
    pub fn entry_wire(&self, t: usize, op: usize) -> usize {
        (t * self.ops + op) % self.layout.width()
    }

    /// Per-wire input token counts implied by the entry-wire schedule —
    /// the argument to [`Layout::quiescent_counts`] for the oracle check.
    pub fn input_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.layout.width()];
        for t in 0..self.threads {
            for op in 0..self.ops {
                counts[self.entry_wire(t, op)] += 1;
            }
        }
        counts
    }

    fn fresh_sim(&self) -> Sim {
        let threads = (0..self.threads)
            .map(|t| {
                let mut vt =
                    VThread { op: 0, layer: 0, wire: self.entry_wire(t, 0), pending: None };
                self.normalize(&mut vt);
                vt
            })
            .collect();
        Sim {
            toggles: vec![0; self.pairs.len()],
            slots: vec![0; self.layout.width()],
            claimed: Vec::new(),
            threads,
        }
    }

    /// Skip layers where the current wire meets no balancer: those are
    /// not shared accesses, so they are not yield points.
    fn normalize(&self, vt: &mut VThread) {
        while vt.layer < self.table.len() && self.table[vt.layer][vt.wire].is_none() {
            vt.layer += 1;
        }
    }

    fn runnable(&self, sim: &Sim, t: usize) -> bool {
        sim.threads[t].op < self.ops
    }

    /// Executes one yield-point step of thread `t`. Caller guarantees
    /// `runnable`.
    fn step(&self, sim: &mut Sim, t: usize) {
        let width = self.layout.width();
        let depth = self.table.len();
        let vt = &mut sim.threads[t];
        if vt.layer == depth {
            // Slot claim: always an atomic fetch-add; the injected fault
            // lives in the balancers, not the exit counters.
            let prev = sim.slots[vt.wire];
            sim.slots[vt.wire] += 1;
            sim.claimed.push(vt.wire + width * prev as usize);
            vt.op += 1;
            if vt.op < self.ops {
                vt.wire = self.entry_wire(t, vt.op);
                vt.layer = 0;
                self.normalize(vt);
            }
            return;
        }
        let b = self.table[vt.layer][vt.wire].expect("normalized position sits on a balancer");
        let value = match self.model {
            BalancerModel::Atomic => {
                let v = sim.toggles[b];
                sim.toggles[b] += 1;
                v
            }
            BalancerModel::Racy => match vt.pending.take() {
                // First half: read the toggle, yield before writing.
                None => {
                    vt.pending = Some(sim.toggles[b]);
                    return;
                }
                // Second half: write back a possibly stale increment.
                Some(v) => {
                    sim.toggles[b] = v + 1;
                    v
                }
            },
        };
        let (top, bottom) = self.pairs[b];
        vt.wire = if value & 1 == 0 { top as usize } else { bottom as usize };
        vt.layer += 1;
        self.normalize(vt);
    }

    /// Terminal-state verdict: three independent checks, all phrased
    /// against order-free oracles (DESIGN.md §10).
    fn check_terminal(&self, sim: &Sim) -> Result<(), String> {
        if let Err(v) = check_step_property(&sim.slots) {
            return Err(v.to_string());
        }
        let expected = self.layout.quiescent_counts(&self.input_counts());
        if sim.slots != expected {
            return Err(format!(
                "slot counts {:?} differ from quiescent oracle {:?}",
                sim.slots, expected
            ));
        }
        let mut claimed = sim.claimed.clone();
        claimed.sort_unstable();
        let total = self.threads * self.ops;
        if claimed != (0..total).collect::<Vec<_>>() {
            return Err(format!("claimed values {claimed:?} are not exactly 0..{total}"));
        }
        Ok(())
    }

    /// Exhaustive DFS over every interleaving. Sound and complete for the
    /// configured model: each recursion level tries every runnable
    /// thread, so all `(Σ steps)! / Π(steps_t!)` schedules are executed
    /// exactly once. Use small configurations — the count is multinomial
    /// in threads × ops × (depth + 1).
    pub fn explore(&self) -> ExploreReport {
        let mut report = ExploreReport::default();
        let mut decisions = String::new();
        self.dfs(&self.fresh_sim(), &mut decisions, &mut report);
        report
    }

    fn dfs(&self, sim: &Sim, decisions: &mut String, report: &mut ExploreReport) {
        let mut any = false;
        for (t, &ch) in THREAD_CHARS.iter().enumerate().take(self.threads) {
            if !self.runnable(sim, t) {
                continue;
            }
            any = true;
            let mut next = sim.clone();
            self.step(&mut next, t);
            decisions.push(ch as char);
            self.dfs(&next, decisions, report);
            decisions.pop();
        }
        if !any {
            report.schedules += 1;
            if let Err(detail) = self.check_terminal(sim) {
                report.record(decisions, detail);
            }
        }
    }

    /// Runs `schedules` complete schedules with uniformly random
    /// runnable-thread choices from a splitmix64 stream. Deterministic in
    /// `seed`; every failing schedule's decision string is recorded for
    /// replay.
    pub fn sample(&self, seed: u64, schedules: u64) -> ExploreReport {
        let mut report = ExploreReport::default();
        let mut state = seed;
        let mut next_u64 = move || {
            // splitmix64: tiny, seedable, and good enough for schedule
            // shuffling — keeps this module dependency-free.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for _ in 0..schedules {
            let mut sim = self.fresh_sim();
            let mut decisions = String::new();
            loop {
                let runnable: Vec<usize> =
                    (0..self.threads).filter(|&t| self.runnable(&sim, t)).collect();
                if runnable.is_empty() {
                    break;
                }
                let t = runnable[(next_u64() % runnable.len() as u64) as usize];
                self.step(&mut sim, t);
                decisions.push(THREAD_CHARS[t] as char);
            }
            report.schedules += 1;
            if let Err(detail) = self.check_terminal(&sim) {
                report.record(&decisions, detail);
            }
        }
        report
    }

    /// Re-executes one decision string exactly. Returns the terminal
    /// verdict (`Ok(None)` = all checks passed, `Ok(Some(v))` = the
    /// violation reproduced), or `Err` if the string is not a complete
    /// valid schedule for this configuration.
    pub fn replay(&self, decisions: &str) -> Result<Option<Violation>, String> {
        let mut sim = self.fresh_sim();
        for (i, c) in decisions.chars().enumerate() {
            let t = THREAD_CHARS
                .iter()
                .position(|&d| d as char == c)
                .ok_or_else(|| format!("step {i}: '{c}' is not a thread character"))?;
            if t >= self.threads || !self.runnable(&sim, t) {
                return Err(format!("step {i}: thread {t} is not runnable"));
            }
            self.step(&mut sim, t);
        }
        if (0..self.threads).any(|t| self.runnable(&sim, t)) {
            return Err("schedule is incomplete: threads still runnable".to_string());
        }
        Ok(self
            .check_terminal(&sim)
            .err()
            .map(|detail| Violation { decisions: decisions.to_string(), detail }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_atomic_width2_is_clean() {
        let ex = Explorer::new(Layout::bitonic(2), 2, 1, BalancerModel::Atomic);
        let report = ex.explore();
        // Two threads × (1 balancer step + 1 exit step) = C(4,2) schedules.
        assert_eq!(report.schedules, 6);
        assert_eq!(report.failing, 0);
    }

    #[test]
    fn racy_balancer_is_caught_with_replayable_schedule() {
        let ex = Explorer::new(Layout::bitonic(2), 2, 1, BalancerModel::Racy);
        let report = ex.explore();
        // Two threads × (2 split-RMW steps + 1 exit step) = C(6,3).
        assert_eq!(report.schedules, 20);
        assert!(report.failing > 0, "lost update must surface in some schedule");
        let v = &report.violations[0];
        let replayed = ex.replay(&v.decisions).expect("recorded schedule is valid");
        assert_eq!(replayed.as_ref().map(|r| &r.detail), Some(&v.detail), "violation reproduces");
        // And the same schedule string is clean under the atomic model.
        let atomic = Explorer::new(Layout::bitonic(2), 2, 1, BalancerModel::Atomic);
        assert!(atomic.replay("0101").unwrap().is_none());
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let ex = Explorer::new(Layout::bitonic(4), 4, 3, BalancerModel::Atomic);
        let a = ex.sample(7, 50);
        assert_eq!(a.schedules, 50);
        assert_eq!(a.failing, 0);
        let racy = Explorer::new(Layout::bitonic(2), 3, 2, BalancerModel::Racy);
        let r1 = racy.sample(42, 200);
        let r2 = racy.sample(42, 200);
        assert!(r1.failing > 0, "200 random schedules find the lost update");
        assert_eq!(r1.failing, r2.failing);
        assert_eq!(
            r1.violations.iter().map(|v| &v.decisions).collect::<Vec<_>>(),
            r2.violations.iter().map(|v| &v.decisions).collect::<Vec<_>>()
        );
    }

    #[test]
    fn replay_rejects_malformed_schedules() {
        let ex = Explorer::new(Layout::bitonic(2), 2, 1, BalancerModel::Atomic);
        assert!(ex.replay("0!").is_err(), "bad character");
        assert!(ex.replay("0000").is_err(), "thread over-scheduled");
        assert!(ex.replay("00").is_err(), "incomplete schedule");
    }
}
