//! Trace-context propagation: a 128-bit trace id plus a 64-bit parent
//! span id, carried across process boundaries in an `x-snet-trace`
//! header (`<32 hex trace>-<16 hex span>`, W3C-traceparent flavoured but
//! dependency-free like the rest of the crate).
//!
//! The contract is asymmetric by design:
//!
//! * **Serialization is strict** — [`TraceContext::to_header`] always
//!   emits exactly 49 lower-case-hex bytes, so the wire form is
//!   byte-stable and greppable in access logs.
//! * **Parsing is lenient** — [`TraceContext::parse_header`] returns
//!   `Option`, and a server that receives a malformed, oversized, or
//!   duplicated header degrades to a fresh server-generated context.
//!   A telemetry header must never be able to fail a request.
//!
//! Span links (`[`LINK_ATTR`]`) connect causally-related but distinct
//! traces: a coalesced rider request keeps its own trace id yet links to
//! the leader's trace, where the one shared compile actually ran.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// The request header carrying a [`TraceContext`].
pub const TRACE_HEADER: &str = "x-snet-trace";

/// Span/response-header attribute naming a *linked* trace (hex trace
/// id): set on rider request spans pointing at the leader's trace.
pub const LINK_ATTR: &str = "link";

/// Span attribute under which the owning trace id is recorded.
pub const TRACE_ATTR: &str = "trace";

/// A 128-bit trace identifier. All-zero is reserved as "absent" (same
/// rule as W3C trace-context) and never generated or parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl TraceId {
    /// 32 lower-case hex digits, zero-padded.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses exactly 32 hex digits (either case); rejects zero.
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let v = u128::from_str_radix(s, 16).ok()?;
        if v == 0 {
            return None;
        }
        Some(TraceId(v))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// A propagated trace context: which trace a request belongs to and
/// which span on the sending side is the parent of whatever the
/// receiver opens next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace: TraceId,
    /// Parent span id on the *sending* side; 0 when the sender had no
    /// open span (trace root).
    pub parent_span: u64,
}

impl TraceContext {
    /// Generates a fresh context (new 128-bit trace id, no parent).
    ///
    /// Id material mixes wall-clock nanos, the pid, and a process-local
    /// counter through two rounds of a 64-bit finalizer — no RNG
    /// dependency, yet ids from concurrent processes on one host do not
    /// collide in practice (the pid and counter split identical
    /// timestamps).
    pub fn generate() -> TraceContext {
        static SALT: AtomicU64 = AtomicU64::new(0);
        let nanos =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        let seq = SALT.fetch_add(1, Ordering::Relaxed);
        let hi = mix64(nanos ^ (std::process::id() as u64).rotate_left(32));
        let lo = mix64(seq.wrapping_mul(0x9e3779b97f4a7c15) ^ nanos.rotate_left(17));
        let raw = ((hi as u128) << 64) | lo as u128;
        // Zero is "absent"; the mixer output is never adjusted otherwise.
        TraceContext { trace: TraceId(if raw == 0 { 1 } else { raw }), parent_span: 0 }
    }

    /// The same trace with a different parent span — what a client
    /// stamps on the wire after opening its request span.
    pub fn child(self, parent_span: u64) -> TraceContext {
        TraceContext { parent_span, ..self }
    }

    /// `"<32 hex trace>-<16 hex span>"` — the `x-snet-trace` value.
    pub fn to_header(self) -> String {
        format!("{:032x}-{:016x}", self.trace.0, self.parent_span)
    }

    /// Lenient inverse of [`Self::to_header`]. Returns `None` (never an
    /// error) for anything but exactly `32 hex '-' 16 hex` with a
    /// non-zero trace id; surrounding whitespace is tolerated because
    /// header values arrive trimmed-or-not depending on the proxy.
    pub fn parse_header(value: &str) -> Option<TraceContext> {
        let value = value.trim();
        // The length check counts bytes, but `split_at` splits at a char
        // boundary: a non-ASCII value could straddle byte 32 and panic.
        // Valid values are hex + '-', so anything non-ASCII is garbage.
        if value.len() != 49 || !value.is_ascii() {
            return None;
        }
        let (trace_part, rest) = value.split_at(32);
        let span_part = rest.strip_prefix('-')?;
        let trace = TraceId::parse_hex(trace_part)?;
        if !span_part.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let parent_span = u64::from_str_radix(span_part, 16).ok()?;
        Some(TraceContext { trace, parent_span })
    }
}

/// SplitMix64 finalizer: full-avalanche 64-bit mixing.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips_and_is_byte_stable() {
        let ctx = TraceContext {
            trace: TraceId(0xdead_beef_0000_0000_0000_0000_cafe_f00d),
            parent_span: 0x1234,
        };
        let h = ctx.to_header();
        assert_eq!(h.len(), 49);
        assert_eq!(h, "deadbeef0000000000000000cafef00d-0000000000001234");
        assert_eq!(TraceContext::parse_header(&h), Some(ctx));
        // Whitespace around the value is tolerated (proxies differ).
        assert_eq!(TraceContext::parse_header(&format!("  {h} ")), Some(ctx));
    }

    #[test]
    fn generated_ids_are_distinct_and_roundtrip() {
        let a = TraceContext::generate();
        let b = TraceContext::generate();
        assert_ne!(a.trace, b.trace, "consecutive ids must differ");
        assert_eq!(a.parent_span, 0);
        assert_eq!(TraceContext::parse_header(&a.to_header()), Some(a));
        let child = a.child(77);
        assert_eq!(child.trace, a.trace);
        assert_eq!(TraceContext::parse_header(&child.to_header()).unwrap().parent_span, 77);
    }

    #[test]
    fn malformed_headers_parse_to_none() {
        for bad in [
            "",
            "not-a-trace",
            "deadbeef-1234",                                       // too short
            "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-0000000000000001",   // non-hex trace
            "00000000000000000000000000000000-0000000000000001",   // zero trace id
            "deadbeef00000000000000.0cafef00d-0000000000001234",   // non-hex byte
            "deadbeef00000000000000000cafef00d0000000000001234",   // missing dash
            "deadbeef00000000000000000cafef00d-00000000000012345", // oversized
        ] {
            assert_eq!(TraceContext::parse_header(bad), None, "{bad:?} must not parse");
        }
        // A 49-byte value with the dash misplaced.
        assert_eq!(
            TraceContext::parse_header("deadbeef0000000000000000cafef00-d0000000000001234"),
            None
        );
    }

    #[test]
    fn multibyte_utf8_never_panics() {
        // 49 *bytes* with a multi-byte char straddling byte 32: a byte
        // split there is not a char boundary, so a naive `split_at`
        // would panic. Header values are attacker-controlled UTF-8.
        for straddle in [30, 31, 32] {
            let bad = format!("{}é{}", "a".repeat(straddle), "b".repeat(49 - straddle - 2));
            assert_eq!(bad.len(), 49);
            assert_eq!(TraceContext::parse_header(&bad), None, "{bad:?} must not parse");
        }
        // Same with a 3-byte char spanning bytes 31..34.
        let bad = format!("{}€{}", "a".repeat(31), "b".repeat(15));
        assert_eq!(bad.len(), 49);
        assert_eq!(TraceContext::parse_header(&bad), None);
    }
}
