//! Reads a JSONL trace back into a [`Report`]: the reconstructed span
//! tree plus counter and gauge summaries. This is what `snetctl report`
//! renders.
//!
//! The parser handles exactly the JSON subset [`Event::to_json_line`]
//! emits — flat objects of strings and numbers plus one nested
//! string→string `attrs` object — keeping the crate dependency-free.

use crate::event::{Event, EventKind};
use crate::hist::HistSnapshot;
use std::collections::BTreeMap;

/// One reconstructed span with its children (children sorted by start
/// time).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Span id.
    pub id: u64,
    /// Emitting thread ordinal.
    pub thread: u64,
    /// Start time (µs since the run epoch).
    pub start_us: u64,
    /// Wall duration in µs.
    pub dur_us: u64,
    /// Attributes attached over the span's lifetime.
    pub attrs: Vec<(String, String)>,
    /// Nested spans.
    pub children: Vec<SpanNode>,
}

/// Aggregated view of one counter name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CounterSummary {
    /// Number of increments observed.
    pub increments: u64,
    /// Sum of all deltas.
    pub total: f64,
}

/// A parsed trace: manifest, span forest, counter and gauge summaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The run manifest's key/value pairs, if the trace recorded one.
    pub manifest: Option<Vec<(String, String)>>,
    /// Root spans in start order.
    pub roots: Vec<SpanNode>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, CounterSummary>,
    /// Winning gauge value by name. "Last value wins" is decided by the
    /// deterministic `(t_us, thread)` key, not file order, so gauges
    /// reported from multiple threads merge the same way no matter how
    /// the emitting threads' drains interleaved in the trace file.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name (same-name snapshots merge).
    pub hists: BTreeMap<String, HistSnapshot>,
    /// Events parsed.
    pub events: usize,
}

impl Report {
    /// True iff the report contains no events at all.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// True iff a span with this name exists anywhere in the forest.
    pub fn has_span(&self, name: &str) -> bool {
        fn walk(nodes: &[SpanNode], name: &str) -> bool {
            nodes.iter().any(|n| n.name == name || walk(&n.children, name))
        }
        walk(&self.roots, name)
    }

    /// All span names in the forest, pre-order, with duplicates.
    pub fn span_names(&self) -> Vec<String> {
        fn walk(nodes: &[SpanNode], out: &mut Vec<String>) {
            for n in nodes {
                out.push(n.name.clone());
                walk(&n.children, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.roots, &mut out);
        out
    }
}

/// Parses a whole JSONL trace into its raw event list. Fails on the
/// first malformed line (reporting its number); empty lines are skipped.
pub fn parse_events(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev = parse_event_line(line)
            .ok_or_else(|| format!("line {}: not a trace event: {line}", lineno + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Parses a whole JSONL trace. Fails on the first malformed line
/// (reporting its number); an empty file yields an empty report.
pub fn parse_trace(text: &str) -> Result<Report, String> {
    Ok(summarize(parse_events(text)?))
}

/// Parses a JSONL trace leniently, skipping malformed lines instead of
/// failing. Returns the report and how many lines were skipped. This is
/// how flight-recorder dumps are read: a ring captured mid-write can
/// hold a torn tail line (and, after a wrap, a torn head), which is
/// damage worth tolerating, not a reason to refuse the rest.
pub fn parse_trace_lossy(text: &str) -> (Report, usize) {
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_event_line(line) {
            Some(ev) => events.push(ev),
            None => skipped += 1,
        }
    }
    (summarize(events), skipped)
}

/// Aggregates an event list into a [`Report`].
pub fn summarize(events: Vec<Event>) -> Report {
    let mut report = Report::default();
    // id → finished span (start, dur, name, parent, thread, attrs).
    let mut ended: Vec<Event> = Vec::new();
    // Deterministic "last value wins" for gauges: keyed by
    // `(t_us, thread)`, not line order (which depends on per-thread
    // buffer drain scheduling).
    let mut gauge_keys: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for ev in events {
        report.events += 1;
        match ev.kind {
            EventKind::Manifest => report.manifest = Some(ev.attrs),
            EventKind::Counter => {
                let c = report.counters.entry(ev.name).or_default();
                c.increments += 1;
                c.total += ev.value;
            }
            EventKind::Gauge => {
                if ev.name == crate::THREAD_LANE_EVENT {
                    continue; // thread metadata, not a measurement
                }
                let key = (ev.t_us, ev.thread);
                if gauge_keys.get(&ev.name).is_none_or(|&existing| key >= existing) {
                    gauge_keys.insert(ev.name.clone(), key);
                    report.gauges.insert(ev.name, ev.value);
                }
            }
            EventKind::Hist => {
                if let Some(snap) = HistSnapshot::from_attrs(&ev.attrs) {
                    report.hists.entry(ev.name).or_default().merge(&snap);
                }
            }
            EventKind::SpanStart => {}
            EventKind::SpanEnd => ended.push(ev),
        }
    }
    report.roots = build_forest(ended);
    report
}

/// Assembles finished spans into a forest. Orphans (parent id never
/// ended, e.g. a truncated trace) are promoted to roots.
fn build_forest(ended: Vec<Event>) -> Vec<SpanNode> {
    let known: std::collections::BTreeSet<u64> = ended.iter().map(|e| e.id).collect();
    let mut children_of: BTreeMap<u64, Vec<SpanNode>> = BTreeMap::new();
    let mut order: Vec<(u64, u64)> = Vec::new(); // (id, parent)
    for e in &ended {
        order.push((e.id, e.parent));
    }
    // Build leaves-first: process in descending id order (a child's id is
    // always allocated after its parent's).
    let mut by_id: BTreeMap<u64, Event> = ended.into_iter().map(|e| (e.id, e)).collect();
    let ids: Vec<u64> = by_id.keys().rev().copied().collect();
    for id in ids {
        let e = by_id.remove(&id).expect("present");
        let mut kids = children_of.remove(&id).unwrap_or_default();
        kids.sort_by_key(|c| c.start_us);
        let node = SpanNode {
            name: e.name,
            id: e.id,
            thread: e.thread,
            start_us: e.t_us.saturating_sub(e.dur_us),
            dur_us: e.dur_us,
            attrs: e.attrs,
            children: kids,
        };
        let parent = if known.contains(&e.parent) { e.parent } else { 0 };
        children_of.entry(parent).or_default().push(node);
    }
    let mut roots = children_of.remove(&0).unwrap_or_default();
    roots.sort_by_key(|r| r.start_us);
    roots
}

/// Renders a report as human-readable text: manifest header, span tree
/// with durations and attrs, counter and gauge tables.
pub fn render(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if let Some(manifest) = &report.manifest {
        let _ = writeln!(out, "run manifest:");
        for (k, v) in manifest {
            let _ = writeln!(out, "  {k:<24} {v}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "span tree ({} events):", report.events);
    fn node(out: &mut String, n: &SpanNode, depth: usize) {
        use std::fmt::Write as _;
        let indent = "  ".repeat(depth + 1);
        let attrs = if n.attrs.is_empty() {
            String::new()
        } else {
            let kv: Vec<String> = n.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  [{}]", kv.join(" "))
        };
        let _ = writeln!(out, "{indent}{:<32} {:>12}{attrs}", n.name, human_us(n.dur_us));
        for c in &n.children {
            node(out, c, depth + 1);
        }
    }
    for root in &report.roots {
        node(&mut out, root, 0);
    }
    if report.roots.is_empty() {
        let _ = writeln!(out, "  (no spans)");
    }
    if !report.counters.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<34} {:>14} {:>12}", "counter", "total", "increments");
        for (name, c) in &report.counters {
            let _ = writeln!(
                out,
                "{name:<34} {:>14} {:>12}",
                crate::event::fmt_f64(c.total),
                c.increments
            );
        }
    }
    if !report.gauges.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<34} {:>14}", "gauge (last)", "value");
        for (name, v) in &report.gauges {
            let _ = writeln!(out, "{name:<34} {:>14}", crate::event::fmt_f64(*v));
        }
    }
    if !report.hists.is_empty() {
        let _ = writeln!(out);
        out.push_str(&render_hist_table(report.hists.iter().map(|(k, v)| (k.as_str(), v))));
    }
    out
}

/// Renders named histogram snapshots as a percentile table (the shared
/// rendering used by `snetctl report` and `snetctl search --stats`).
pub fn render_hist_table<'a>(
    rows: impl IntoIterator<Item = (&'a str, &'a HistSnapshot)>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "histogram", "count", "p50", "p90", "p99", "max", "mean"
    );
    for (name, h) in rows {
        let _ = writeln!(
            out,
            "{name:<34} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12.1}",
            h.count,
            h.percentile(50.0),
            h.percentile(90.0),
            h.percentile(99.0),
            h.max,
            h.mean()
        );
    }
    out
}

/// Renders labelled counts as a share-of-total breakdown table (used by
/// `snetctl search --stats` for the prune breakdown).
pub fn render_breakdown(title: &str, total: u64, rows: &[(&str, u64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title:<34} {:>14} {:>10}", "count", "% of total");
    for (label, count) in rows {
        let pct = if total == 0 { 0.0 } else { 100.0 * *count as f64 / total as f64 };
        let _ = writeln!(out, "  {label:<32} {count:>14} {pct:>9.2}%");
    }
    out
}

/// `1234567` µs → `"1.235s"`; adaptive µs/ms/s units.
pub fn human_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

// ---------------------------------------------------------------------
// Minimal JSON parsing for the emitted subset.
// ---------------------------------------------------------------------

/// Parses one JSONL trace line back into an [`Event`]. Returns `None`
/// for anything [`Event::to_json_line`] could not have produced.
pub fn parse_event_line(line: &str) -> Option<Event> {
    let fields = parse_json_object(line)?;
    let mut ev = Event {
        kind: EventKind::Counter,
        name: String::new(),
        id: 0,
        parent: 0,
        thread: 0,
        t_us: 0,
        dur_us: 0,
        value: 0.0,
        attrs: Vec::new(),
    };
    let mut saw_type = false;
    for (key, val) in fields {
        match (key.as_str(), val) {
            ("type", JsonValue::Str(s)) => {
                ev.kind = EventKind::from_wire_name(&s)?;
                saw_type = true;
            }
            ("name", JsonValue::Str(s)) => ev.name = s,
            ("id", JsonValue::Num(v)) => ev.id = v as u64,
            ("parent", JsonValue::Num(v)) => ev.parent = v as u64,
            ("thread", JsonValue::Num(v)) => ev.thread = v as u64,
            ("t_us", JsonValue::Num(v)) => ev.t_us = v as u64,
            ("dur_us", JsonValue::Num(v)) => ev.dur_us = v as u64,
            ("value", JsonValue::Num(v)) => ev.value = v,
            ("attrs", JsonValue::Obj(kv)) => {
                ev.attrs = kv
                    .into_iter()
                    .map(|(k, v)| match v {
                        JsonValue::Str(s) => Some((k, s)),
                        _ => None,
                    })
                    .collect::<Option<Vec<_>>>()?;
            }
            _ => return None,
        }
    }
    if !saw_type {
        return None;
    }
    Some(ev)
}

pub(crate) enum JsonValue {
    Str(String),
    Num(f64),
    Obj(Vec<(String, JsonValue)>),
}

/// Parses a complete JSON object document (any whitespace layout) of the
/// string/number/nested-object subset this crate emits. Used by
/// [`crate::baseline`] to read baseline files back.
pub(crate) fn parse_json_object(text: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    let fields = p.object()?;
    p.ws();
    if p.i != p.b.len() {
        return None;
    }
    Some(fields)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn object(&mut self) -> Option<Vec<(String, JsonValue)>> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == b'}' {
            self.i += 1;
            return Some(out);
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            out.push((key, val));
            self.ws();
            match self.b.get(self.i)? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Some(out);
                }
                _ => return None,
            }
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        self.ws();
        match self.b.get(self.i)? {
            b'"' => Some(JsonValue::Str(self.string()?)),
            b'{' => Some(JsonValue::Obj(self.object()?)),
            _ => self.number(),
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i]).ok()?.parse().ok().map(JsonValue::Num)
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match *self.b.get(self.i)? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match *self.b.get(self.i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.b.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                c if c < 0x80 => {
                    out.push(c as char);
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let s = std::str::from_utf8(&self.b[self.i..]).ok()?;
                    let ch = s.chars().next()?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(kind: EventKind, name: &str, id: u64, parent: u64, t: u64, dur: u64) -> String {
        Event {
            kind,
            name: name.into(),
            id,
            parent,
            thread: 0,
            t_us: t,
            dur_us: dur,
            value: 0.0,
            attrs: Vec::new(),
        }
        .to_json_line()
    }

    #[test]
    fn forest_reconstruction_nests_and_orders() {
        // compile(1) { lower(2), pass(3) }  check(4) { shard(5), shard(6) }
        let text = [
            line(EventKind::SpanEnd, "ir.lower", 2, 1, 20, 10),
            line(EventKind::SpanEnd, "ir.pass", 3, 1, 40, 15),
            line(EventKind::SpanEnd, "ir.compile", 1, 0, 50, 45),
            line(EventKind::SpanEnd, "check.shard", 6, 4, 90, 9),
            line(EventKind::SpanEnd, "check.shard", 5, 4, 80, 15),
            line(EventKind::SpanEnd, "check.zero_one", 4, 0, 100, 40),
        ]
        .join("\n");
        let report = parse_trace(&text).expect("parses");
        assert_eq!(report.roots.len(), 2);
        assert_eq!(report.roots[0].name, "ir.compile");
        let names: Vec<&str> = report.roots[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["ir.lower", "ir.pass"]);
        assert_eq!(report.roots[1].children.len(), 2);
        // Children sorted by start time: shard 5 starts at 65, shard 6 at 81.
        assert!(report.roots[1].children[0].start_us <= report.roots[1].children[1].start_us);
        assert!(report.has_span("check.shard"));
        assert!(!report.has_span("nonexistent"));
        let rendered = render(&report);
        assert!(rendered.contains("ir.compile"));
        assert!(rendered.contains("check.zero_one"));
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let mut ev = Event {
            kind: EventKind::Counter,
            name: "check.inputs".into(),
            id: 0,
            parent: 0,
            thread: 0,
            t_us: 0,
            dur_us: 0,
            value: 64.0,
            attrs: Vec::new(),
        };
        let mut lines = vec![ev.to_json_line(), ev.to_json_line()];
        ev.kind = EventKind::Gauge;
        ev.name = "check.progress".into();
        ev.value = 0.5;
        lines.push(ev.to_json_line());
        ev.value = 1.0;
        lines.push(ev.to_json_line());
        let report = parse_trace(&lines.join("\n")).unwrap();
        let c = report.counters.get("check.inputs").unwrap();
        assert_eq!(c.increments, 2);
        assert_eq!(c.total, 128.0);
        assert_eq!(report.gauges.get("check.progress"), Some(&1.0));
        assert!(render(&report).contains("check.inputs"));
    }

    #[test]
    fn orphan_spans_become_roots_and_bad_lines_error() {
        let text = line(EventKind::SpanEnd, "lost.child", 9, 4, 10, 5);
        let report = parse_trace(&text).unwrap();
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].name, "lost.child");
        assert!(parse_trace("not json at all").is_err());
        assert!(parse_trace("{\"no_type\": 1}").is_err());
        assert_eq!(parse_trace("").unwrap().events, 0);
    }

    #[test]
    fn gauge_merge_is_deterministic_across_line_orders() {
        // Three threads report the same gauge; the trace file order of
        // the lines depends on per-thread drain scheduling. The winner
        // must be the maximal (t_us, thread) key in every ordering.
        let mut gauges = Vec::new();
        for (thread, t_us, value) in [(0u64, 50u64, 0.1f64), (2, 90, 0.7), (1, 90, 0.5)] {
            gauges.push(
                Event {
                    kind: EventKind::Gauge,
                    name: "search.progress".into(),
                    id: 0,
                    parent: 0,
                    thread,
                    t_us,
                    dur_us: 0,
                    value,
                    attrs: Vec::new(),
                }
                .to_json_line(),
            );
        }
        // All 6 permutations of the three lines agree.
        let perms: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        for perm in perms {
            let text: Vec<&str> = perm.iter().map(|&i| gauges[i].as_str()).collect();
            let report = parse_trace(&text.join("\n")).unwrap();
            // (90, thread 2) beats (90, thread 1) beats (50, thread 0).
            assert_eq!(report.gauges["search.progress"], 0.7, "order {perm:?}");
        }
    }

    #[test]
    fn hist_events_merge_into_the_report() {
        let h = crate::hist::Histogram::new();
        h.record(10);
        h.record(1000);
        let snap = h.snapshot();
        let line = snap.to_event("search.task.nodes").to_json_line();
        let report = parse_trace(&format!("{line}\n{line}")).unwrap();
        let merged = &report.hists["search.task.nodes"];
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 2020);
        let rendered = render(&report);
        assert!(rendered.contains("search.task.nodes"));
        assert!(rendered.contains("p99"));
    }

    #[test]
    fn human_us_units() {
        assert_eq!(human_us(5), "5µs");
        assert_eq!(human_us(1_500), "1.50ms");
        assert_eq!(human_us(2_500_000), "2.500s");
    }
}
