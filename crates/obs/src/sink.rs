//! Pluggable event sinks: JSONL file, human progress line, in-memory.

use crate::event::{Event, EventKind};
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// Receives drained events. Implementations must be cheap and must not
/// call back into the observation API (events emitted from inside a sink
/// would deadlock the drain).
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn event(&self, e: &Event);
    /// Flushes any buffered output (end of run).
    fn flush(&self) {}
}

/// Writes one JSON object per event line; the format [`crate::report`]
/// reads back.
pub struct JsonlSink {
    w: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path`.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink { w: Mutex::new(std::io::BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn event(&self, e: &Event) {
        if let Ok(mut w) = self.w.lock() {
            let _ = writeln!(w, "{}", e.to_json_line());
        }
    }

    fn flush(&self) {
        if let Ok(mut w) = self.w.lock() {
            let _ = w.flush();
        }
    }
}

// Last-resort guard: if the sink is dropped without an explicit
// `snet_obs::flush()` (early return, abort path), the `BufWriter` would
// otherwise silently discard its tail on some error paths. `BufWriter`'s
// own Drop does attempt a flush, but doing it here too keeps the
// behaviour explicit and panic-tolerant (a poisoned lock is skipped, and
// each line is a complete JSON object so the file stays parseable).
impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

/// Captures events in memory for tests and in-process inspection.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A snapshot of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Names of captured events of the given kind, in arrival order.
    pub fn names_of(&self, kind: EventKind) -> Vec<String> {
        self.events().into_iter().filter(|e| e.kind == kind).map(|e| e.name).collect()
    }
}

impl Sink for MemorySink {
    fn event(&self, e: &Event) {
        self.events.lock().expect("memory sink poisoned").push(e.clone());
    }
}

/// Renders `*.progress` gauge events as a live single-line display on
/// stderr (`\r`-rewritten, like a download meter). The gauge value is the
/// completed fraction in `[0, 1]`; the attrs `done`, `total`, `per_sec`
/// and `eta_s`, when present, enrich the line. A root-span end finishes
/// the line with a newline so subsequent output starts clean.
pub struct ProgressSink {
    state: Mutex<ProgressState>,
}

struct ProgressState {
    last_draw: Option<Instant>,
    line_open: bool,
}

impl Default for ProgressSink {
    fn default() -> Self {
        ProgressSink::new()
    }
}

impl ProgressSink {
    /// A sink drawing to stderr.
    pub fn new() -> Self {
        ProgressSink { state: Mutex::new(ProgressState { last_draw: None, line_open: false }) }
    }

    fn draw(&self, e: &Event) {
        let mut st = self.state.lock().expect("progress sink poisoned");
        // Throttle redraws to ~20 Hz, but never skip the terminal sample.
        let finished = e.value >= 1.0;
        if !finished {
            if let Some(last) = st.last_draw {
                if last.elapsed().as_millis() < 50 {
                    return;
                }
            }
        }
        st.last_draw = Some(Instant::now());
        st.line_open = true;
        let mut line =
            format!("\r[{}] {:5.1}%", e.name.trim_end_matches(".progress"), e.value * 100.0);
        if let (Some(done), Some(total)) = (e.attr("done"), e.attr("total")) {
            line.push_str(&format!(" | {done}/{total} inputs"));
        }
        if let Some(rate) = e.attr("per_sec").and_then(|s| s.parse::<f64>().ok()) {
            line.push_str(&format!(" | {} inputs/s", human_rate(rate)));
        }
        if let Some(eta) = e.attr("eta_s").and_then(|s| s.parse::<f64>().ok()) {
            line.push_str(&format!(" | ETA {eta:.1}s"));
        }
        // Pad so a shorter redraw fully overwrites the previous one.
        let width = line.len().max(78);
        eprint!("{line:<width$}");
        let _ = std::io::stderr().flush();
    }
}

/// `1234567.0` → `"1.2M"` — compact rate rendering.
fn human_rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

impl Sink for ProgressSink {
    fn event(&self, e: &Event) {
        match e.kind {
            EventKind::Gauge if e.name.ends_with(".progress") => self.draw(e),
            EventKind::SpanEnd if e.parent == 0 => {
                let mut st = self.state.lock().expect("progress sink poisoned");
                if st.line_open {
                    eprintln!();
                    st.line_open = false;
                }
            }
            _ => {}
        }
    }

    fn flush(&self) {
        let mut st = self.state.lock().expect("progress sink poisoned");
        if st.line_open {
            eprintln!();
            st.line_open = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_captures_in_order() {
        let sink = MemorySink::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            sink.event(&Event {
                kind: EventKind::Counter,
                name: (*name).into(),
                id: 0,
                parent: 0,
                thread: 0,
                t_us: i as u64,
                dur_us: 0,
                value: 1.0,
                attrs: Vec::new(),
            });
        }
        assert_eq!(sink.names_of(EventKind::Counter), vec!["a", "b", "c"]);
        assert!(sink.names_of(EventKind::Gauge).is_empty());
    }

    #[test]
    fn human_rates() {
        assert_eq!(human_rate(12.0), "12");
        assert_eq!(human_rate(1_234.0), "1.2k");
        assert_eq!(human_rate(2_500_000.0), "2.5M");
        assert_eq!(human_rate(7e9), "7.0G");
    }
}
