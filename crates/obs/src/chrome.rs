//! Chrome trace-event export: converts a JSONL trace into the JSON
//! object format `chrome://tracing` and Perfetto load directly.
//!
//! Mapping:
//!
//! * finished spans → complete (`"ph":"X"`) duration events on the lane
//!   of their emitting thread, span attrs as `args`;
//! * spans that started but never ended (truncated trace) → begin
//!   (`"ph":"B"`) events, which the viewers render as open-ended;
//! * counters → cumulative counter tracks (`"ph":"C"`), one per name;
//! * gauges → counter tracks carrying the raw sample;
//! * histogram snapshots → global instant events (`"ph":"i"`) whose
//!   `args` hold the percentile summary;
//! * the run manifest → `process_name` metadata plus an instant event
//!   with the full manifest as `args`;
//! * every thread ordinal seen → `thread_name`/`thread_sort_index`
//!   metadata, so worker lanes are labelled and ordered.
//!
//! Timestamps are microseconds since the run epoch, which is exactly the
//! trace-event format's native unit.

use crate::event::{fmt_f64, write_json_string, Event, EventKind};
use std::collections::{BTreeMap, BTreeSet};

/// The fixed process id stamped on every exported event (one trace file
/// is one process).
const PID: u64 = 1;

fn push_args(out: &mut String, attrs: &[(String, String)]) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, k);
        out.push(':');
        write_json_string(out, v);
    }
    out.push('}');
}

fn push_event_head(out: &mut String, ph: char, name: &str, tid: u64, ts: u64) {
    use std::fmt::Write as _;
    out.push_str("{\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"name\":");
    write_json_string(out, name);
    let _ = write!(out, ",\"pid\":{PID},\"tid\":{tid},\"ts\":{ts}");
}

/// Converts parsed trace events into a Chrome trace-event JSON document
/// (the object form: `{"displayTimeUnit": …, "traceEvents": […]}`).
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut records: Vec<String> = Vec::with_capacity(events.len() + 8);

    // Metadata: process name (from the manifest when present) and one
    // labelled, sorted lane per thread ordinal.
    let tool = events
        .iter()
        .find(|e| e.kind == EventKind::Manifest)
        .and_then(|e| e.attr("tool"))
        .unwrap_or("snet");
    let mut meta = String::new();
    push_event_head(&mut meta, 'M', "process_name", 0, 0);
    push_args(&mut meta, &[("name".to_string(), tool.to_string())]);
    meta.push('}');
    records.push(meta);

    // Threads that published a lane label (via `thread_lane`) are named
    // by role; the rest keep the generic ordinal label. Last label wins,
    // matching the emitter's "re-label if reused" contract.
    let mut lanes: BTreeMap<u64, &str> = BTreeMap::new();
    for e in events {
        if e.name == crate::THREAD_LANE_EVENT {
            if let Some(lane) = e.attr("lane") {
                lanes.insert(e.thread, lane);
            }
        }
    }

    let threads: BTreeSet<u64> = events.iter().map(|e| e.thread).collect();
    for &tid in &threads {
        let label = match lanes.get(&tid) {
            Some(lane) => lane.to_string(),
            None if tid == 0 => "main".to_string(),
            None => format!("worker-{tid}"),
        };
        let mut name = String::new();
        push_event_head(&mut name, 'M', "thread_name", tid, 0);
        push_args(&mut name, &[("name".to_string(), label)]);
        name.push('}');
        records.push(name);
        let mut sort = String::new();
        push_event_head(&mut sort, 'M', "thread_sort_index", tid, 0);
        sort.push_str(&format!(",\"args\":{{\"sort_index\":{tid}}}}}"));
        records.push(sort);
    }

    // Spans that started but never finished surface as "B" events.
    let ended: BTreeSet<u64> =
        events.iter().filter(|e| e.kind == EventKind::SpanEnd).map(|e| e.id).collect();

    // Counter tracks are cumulative sums in emission order.
    let mut totals: BTreeMap<&str, f64> = BTreeMap::new();

    for e in events {
        let mut rec = String::new();
        match e.kind {
            EventKind::SpanEnd => {
                let ts = e.t_us.saturating_sub(e.dur_us);
                push_event_head(&mut rec, 'X', &e.name, e.thread, ts);
                rec.push_str(&format!(",\"dur\":{}", e.dur_us));
                if !e.attrs.is_empty() {
                    push_args(&mut rec, &e.attrs);
                }
                rec.push('}');
            }
            EventKind::SpanStart => {
                if ended.contains(&e.id) {
                    continue; // covered by the complete event
                }
                push_event_head(&mut rec, 'B', &e.name, e.thread, e.t_us);
                rec.push('}');
            }
            EventKind::Counter => {
                let total = totals.entry(e.name.as_str()).or_insert(0.0);
                *total += e.value;
                push_event_head(&mut rec, 'C', &e.name, 0, e.t_us);
                rec.push_str(&format!(",\"args\":{{\"value\":{}}}}}", fmt_f64(*total)));
            }
            EventKind::Gauge => {
                if e.name == crate::THREAD_LANE_EVENT {
                    continue; // consumed above as thread_name metadata
                }
                push_event_head(&mut rec, 'C', &e.name, 0, e.t_us);
                rec.push_str(&format!(",\"args\":{{\"value\":{}}}}}", fmt_f64(e.value)));
            }
            EventKind::Hist => {
                push_event_head(&mut rec, 'i', &e.name, e.thread, e.t_us);
                rec.push_str(",\"s\":\"g\"");
                push_args(&mut rec, &e.attrs);
                rec.push('}');
            }
            EventKind::Manifest => {
                push_event_head(&mut rec, 'i', &e.name, e.thread, e.t_us);
                rec.push_str(",\"s\":\"g\"");
                push_args(&mut rec, &e.attrs);
                rec.push('}');
            }
        }
        records.push(rec);
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&records.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Parses a JSONL trace and exports it ([`to_chrome_trace`] over
/// [`crate::report::parse_events`]).
pub fn trace_to_chrome(trace_text: &str) -> Result<String, String> {
    Ok(to_chrome_trace(&crate::report::parse_events(trace_text)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, name: &str, id: u64, thread: u64, t_us: u64, dur_us: u64) -> Event {
        Event {
            kind,
            name: name.into(),
            id,
            parent: 0,
            thread,
            t_us,
            dur_us,
            value: 0.0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn spans_become_complete_events_on_thread_lanes() {
        let mut end = ev(EventKind::SpanEnd, "search.worker", 3, 2, 150, 100);
        end.attrs.push(("tasks".into(), "7".into()));
        let events = vec![ev(EventKind::SpanStart, "search.worker", 3, 2, 50, 0), end];
        let json = to_chrome_trace(&events);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"ts\":50"));
        assert!(json.contains("\"dur\":100"));
        assert!(json.contains("\"tasks\":\"7\""));
        assert!(json.contains("\"name\":\"worker-2\""), "thread lane is labelled: {json}");
        // The start is absorbed into the complete event.
        assert!(!json.contains("\"ph\":\"B\""));
    }

    #[test]
    fn unfinished_spans_surface_as_begin_events() {
        let events = vec![ev(EventKind::SpanStart, "search.run", 1, 0, 10, 0)];
        let json = to_chrome_trace(&events);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(!json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn counters_accumulate_into_tracks() {
        let mut a = ev(EventKind::Counter, "search.nodes", 0, 1, 10, 0);
        a.value = 5.0;
        let mut b = a.clone();
        b.t_us = 20;
        b.value = 7.0;
        let json = to_chrome_trace(&[a, b]);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("{\"value\":5}"));
        assert!(json.contains("{\"value\":12}"), "counter track is cumulative: {json}");
    }

    #[test]
    fn lane_events_name_their_threads_and_leave_no_counter_track() {
        let mut lane = ev(EventKind::Gauge, crate::THREAD_LANE_EVENT, 0, 4, 5, 0);
        lane.attrs.push(("lane".into(), "http-worker-2".into()));
        let work = {
            let mut e = ev(EventKind::SpanEnd, "http.request", 9, 4, 40, 30);
            e.attrs.push(("endpoint".into(), "/healthz".into()));
            e
        };
        let json =
            to_chrome_trace(&[lane, ev(EventKind::SpanStart, "http.request", 9, 4, 10, 0), work]);
        assert!(json.contains("\"name\":\"http-worker-2\""), "lane label wins: {json}");
        assert!(!json.contains("\"name\":\"worker-4\""), "generic label suppressed: {json}");
        assert!(
            !json.contains(&format!("\"ph\":\"C\",\"name\":\"{}\"", crate::THREAD_LANE_EVENT)),
            "lane events are metadata, not counter tracks: {json}"
        );
    }

    #[test]
    fn manifest_names_the_process_and_roundtrips_from_jsonl() {
        let manifest = crate::RunManifest::capture("unit-tool").to_event();
        let jsonl = manifest.to_json_line();
        let json = trace_to_chrome(&jsonl).expect("trace parses");
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"unit-tool\""));
        assert!(trace_to_chrome("not json").is_err());
    }
}
