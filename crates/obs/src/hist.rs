//! Low-overhead instruments: lock-free log2-bucketed histograms and
//! per-thread sharded counters.
//!
//! Both are designed for hot paths that must stay cheap whether or not a
//! sink is installed: recording is one or two relaxed atomic RMWs, no
//! locks, no allocation. Aggregation (snapshots, sums, percentiles) pays
//! the cost instead and runs at phase boundaries only.

use crate::event::{Event, EventKind};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: bucket `b > 0` covers `[2^(b-1), 2^b)`,
/// bucket 0 holds zero samples. Values at or above `2^62` clamp into the
/// last bucket.
pub const HIST_BUCKETS: usize = 63;

/// A lock-free histogram over `u64` samples with logarithmic buckets.
///
/// [`record`](Histogram::record) is wait-free (one relaxed `fetch_add`
/// per bucket/count/sum plus a `fetch_max`), so it can be shared by any
/// number of worker threads without coordination. Read it back with
/// [`snapshot`](Histogram::snapshot).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket index a value lands in.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper edge of bucket `b` (also the Prometheus `le` bound
/// [`crate::promtext`] renders for it).
pub(crate) fn bucket_edge(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free; safe from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent-enough copy for reporting (individual loads are
    /// relaxed; concurrent writers may straddle the snapshot by a
    /// sample, which reporting tolerates).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`], the form that travels through
/// events, reports, and result artifacts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts ([`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
}

impl HistSnapshot {
    /// True iff no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (0–100), interpolated linearly
    /// within the bucket containing that rank (assuming samples spread
    /// uniformly across the bucket, each occupying the midpoint of its
    /// 1/c slice). The top rank returns the exact observed maximum and
    /// the bucket range is clamped to it, so a single-sample bucket
    /// reports a value inside the bucket rather than its upper edge.
    /// Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if seen + c >= rank && c > 0 {
                let lo = if b == 0 { 0 } else { bucket_edge(b - 1) + 1 };
                let hi = bucket_edge(b).min(self.max);
                if hi <= lo {
                    return hi;
                }
                let pos = (rank - seen) as f64 - 0.5;
                return lo + ((pos / c as f64) * (hi - lo) as f64).round() as u64;
            }
            seen += c;
        }
        self.max
    }

    /// Records one sample directly into the snapshot (the plain-data
    /// path used by the registry's labeled histograms; concurrent
    /// recording belongs on [`Histogram`]).
    pub fn record(&mut self, v: u64) {
        if self.buckets.len() < HIST_BUCKETS {
            self.buckets.resize(HIST_BUCKETS, 0);
        }
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Adds another snapshot into this one bucket-wise.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The event-attr encoding (inverse of [`HistSnapshot::from_attrs`]).
    /// Buckets serialize sparsely as `index:count` pairs.
    pub fn to_attrs(&self) -> Vec<(String, String)> {
        let buckets: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, c)| format!("{b}:{c}"))
            .collect();
        vec![
            ("count".into(), self.count.to_string()),
            ("sum".into(), self.sum.to_string()),
            ("max".into(), self.max.to_string()),
            ("p50".into(), self.percentile(50.0).to_string()),
            ("p90".into(), self.percentile(90.0).to_string()),
            ("p99".into(), self.percentile(99.0).to_string()),
            ("buckets".into(), buckets.join(",")),
        ]
    }

    /// Reconstructs a snapshot from event attrs; `None` if the encoding
    /// is not one [`HistSnapshot::to_attrs`] produced.
    pub fn from_attrs(attrs: &[(String, String)]) -> Option<Self> {
        let get = |k: &str| attrs.iter().find(|(a, _)| a == k).map(|(_, v)| v.as_str());
        let mut snap = HistSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            count: get("count")?.parse().ok()?,
            sum: get("sum")?.parse().ok()?,
            max: get("max")?.parse().ok()?,
        };
        let buckets = get("buckets")?;
        for pair in buckets.split(',').filter(|s| !s.is_empty()) {
            let (b, c) = pair.split_once(':')?;
            let b: usize = b.parse().ok()?;
            if b >= snap.buckets.len() {
                snap.buckets.resize(b + 1, 0);
            }
            snap.buckets[b] = c.parse().ok()?;
        }
        Some(snap)
    }

    /// The snapshot as an [`Event`] (kind [`EventKind::Hist`]); `value`
    /// carries the sample count for quick scanning.
    pub fn to_event(&self, name: &str) -> Event {
        Event {
            kind: EventKind::Hist,
            name: name.to_string(),
            id: 0,
            parent: 0,
            thread: 0,
            t_us: crate::now_us(),
            dur_us: 0,
            value: self.count as f64,
            attrs: self.to_attrs(),
        }
    }
}

/// Shard count for [`ShardedCounter`]; a power of two so the thread
/// ordinal maps with a mask.
const COUNTER_SHARDS: usize = 16;

#[repr(align(64))]
#[derive(Debug)]
struct PaddedCell(AtomicU64);

/// A counter sharded across cache-line-padded cells indexed by the
/// calling thread's ordinal, so concurrent increments from a worker pool
/// do not contend on one cache line. Reads sum all cells.
#[derive(Debug)]
pub struct ShardedCounter {
    cells: [PaddedCell; COUNTER_SHARDS],
}

impl Default for ShardedCounter {
    fn default() -> Self {
        ShardedCounter::new()
    }
}

impl ShardedCounter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        ShardedCounter { cells: [const { PaddedCell(AtomicU64::new(0)) }; COUNTER_SHARDS] }
    }

    /// Adds `delta` to the calling thread's shard.
    pub fn add(&self, delta: u64) {
        let shard = crate::thread_ordinal() as usize & (COUNTER_SHARDS - 1);
        self.cells[shard].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The total across all shards.
    pub fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_edge(0), 0);
        assert_eq!(bucket_edge(3), 7);
    }

    #[test]
    fn percentiles_and_mean() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean(), 50.5);
        // Uniform 1..=100: interpolation inside the log2 buckets lands
        // on the exact order statistics, not the bucket upper edges.
        assert_eq!(s.percentile(50.0), 50);
        assert_eq!(s.percentile(90.0), 90);
        assert_eq!(s.percentile(99.0), 99);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.percentile(0.0), 1);
        let empty = HistSnapshot::default();
        assert_eq!(empty.percentile(50.0), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn single_sample_buckets_interpolate_instead_of_reporting_the_edge() {
        // One sample per bucket: the old estimator returned the bucket
        // upper edge (127 for a sample of 100); interpolation stays
        // inside the bucket and the top rank is the exact max.
        let h = Histogram::new();
        h.record(100);
        h.record(600);
        let s = h.snapshot();
        // rank 1 → bucket [64, 127], single sample → midpoint-ish, not 127.
        assert_eq!(s.percentile(50.0), 96);
        // top rank → exact observed maximum.
        assert_eq!(s.percentile(99.0), 600);
        // A lone sample reports itself at every percentile.
        let one = Histogram::new();
        one.record(600);
        let s = one.snapshot();
        assert_eq!(s.percentile(50.0), 600);
        assert_eq!(s.percentile(99.0), 600);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(9);
        b.record(1000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1014);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn attrs_roundtrip() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 7, 300, 1 << 40] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistSnapshot::from_attrs(&s.to_attrs()).expect("attrs parse back");
        assert_eq!(back.count, s.count);
        assert_eq!(back.sum, s.sum);
        assert_eq!(back.max, s.max);
        assert_eq!(back.buckets[..HIST_BUCKETS], s.buckets[..]);
        assert!(HistSnapshot::from_attrs(&[("count".into(), "x".into())]).is_none());
    }

    #[test]
    fn histogram_event_roundtrips_through_the_parser() {
        let h = Histogram::new();
        h.record(12);
        h.record(90);
        let line = h.snapshot().to_event("search.task.nodes").to_json_line();
        let back = crate::report::parse_event_line(&line).expect("hist line parses");
        assert_eq!(back.kind, EventKind::Hist);
        let snap = HistSnapshot::from_attrs(&back.attrs).expect("snapshot decodes");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 102);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        let c = ShardedCounter::new();
        crossbeam_free_scope(&h, &c);
        let s = h.snapshot();
        assert_eq!(s.count, 4 * 1000);
        assert_eq!(c.sum(), 4 * 1000);
    }

    // std::thread::scope keeps this crate dependency-free.
    fn crossbeam_free_scope(h: &Histogram, c: &ShardedCounter) {
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i);
                        c.add(1);
                    }
                });
            }
        });
    }

    #[test]
    fn sharded_counter_sums_across_shards() {
        let c = ShardedCounter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.sum(), 7);
    }
}
