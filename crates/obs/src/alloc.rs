//! Opt-in resource accounting: a counting global allocator and the
//! scrape-side stats it feeds.
//!
//! With the `alloc` feature, `CountingAlloc` wraps the system allocator
//! and keeps four relaxed atomics — live bytes, peak live bytes, total
//! allocations, total bytes — that the registry exposes as
//! `snet_mem_live_bytes`, `snet_mem_peak_bytes`, `snet_alloc_total`,
//! and `snet_alloc_bytes_total`. A binary opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: snet_obs::alloc::CountingAlloc = snet_obs::alloc::CountingAlloc;
//! ```
//!
//! Without the feature, [`stats`] returns `None` and nothing is
//! instrumented; the accounting costs two `fetch_add`s and a
//! `fetch_max` per allocation when on, zero when off.

/// A point-in-time copy of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
    /// Allocations performed since process start.
    pub total_allocs: u64,
    /// Bytes allocated since process start (frees do not subtract).
    pub total_bytes: u64,
}

#[cfg(feature = "alloc")]
mod imp {
    use super::AllocStats;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);
    static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
    static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

    /// The counting allocator. Zero-sized; install with
    /// `#[global_allocator]`.
    pub struct CountingAlloc;

    fn on_alloc(size: usize) {
        let size = size as u64;
        TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                let old = layout.size() as u64;
                let new = new_size as u64;
                TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
                TOTAL_BYTES.fetch_add(new.saturating_sub(old), Ordering::Relaxed);
                if new >= old {
                    let live = LIVE.fetch_add(new - old, Ordering::Relaxed) + (new - old);
                    PEAK.fetch_max(live, Ordering::Relaxed);
                } else {
                    LIVE.fetch_sub(old - new, Ordering::Relaxed);
                }
            }
            p
        }
    }

    pub fn stats() -> Option<AllocStats> {
        Some(AllocStats {
            live_bytes: LIVE.load(Ordering::Relaxed),
            peak_bytes: PEAK.load(Ordering::Relaxed),
            total_allocs: TOTAL_ALLOCS.load(Ordering::Relaxed),
            total_bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        })
    }
}

#[cfg(feature = "alloc")]
pub use imp::CountingAlloc;

/// Current allocator counters; `None` unless the `alloc` feature is
/// enabled (the counters read zero until a binary actually installs
/// `CountingAlloc` as its global allocator).
pub fn stats() -> Option<AllocStats> {
    #[cfg(feature = "alloc")]
    {
        imp::stats()
    }
    #[cfg(not(feature = "alloc"))]
    {
        None
    }
}
