//! The global metrics registry: every counter, gauge, and histogram the
//! process emits, aggregated under stable Prometheus series names.
//!
//! The event stream (`emit_event`) is a *log*: it records each
//! increment as it happens and is replayed by reports. The registry is
//! the *current state*: dotted event names map onto the `snet_*`
//! namespace (`store.hits` → `snet_store_hits_total`) and accumulate in
//! place, so `snetctl metrics` — and later a `snetd /metrics` endpoint —
//! can expose the process without a trace file. Mirroring happens inside
//! [`crate::counter`]/[`crate::gauge`]/[`fn@crate::hist`] after the
//! enabled-check, preserving the zero-cost-when-disabled contract.
//!
//! Rendering to the Prometheus text format lives in [`crate::promtext`];
//! this module owns the data model ([`Family`], [`Sample`], [`Value`])
//! and the global store.

use crate::hist::HistSnapshot;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// The three Prometheus metric types the registry models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone accumulator; rendered with a `_total` suffix.
    Counter,
    /// Point-in-time value, last write wins.
    Gauge,
    /// Log2-bucketed distribution (see [`HistSnapshot`]).
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword for this kind.
    pub fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A metric value, one per label set.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Accumulated counter total.
    Counter(f64),
    /// Last gauge sample.
    Gauge(f64),
    /// Merged histogram state.
    Hist(HistSnapshot),
}

/// One series: a label set and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sorted `key=value` labels (empty for unlabeled series).
    pub labels: Vec<(String, String)>,
    /// The series value.
    pub value: Value,
}

/// A metric family: one name, one type, one help string, N labeled
/// series.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Full Prometheus name (already `snet_`-prefixed and suffixed).
    pub name: String,
    /// Help text; empty means no `# HELP` line is rendered.
    pub help: String,
    /// Metric type.
    pub kind: MetricKind,
    /// Series, sorted by label signature.
    pub samples: Vec<Sample>,
}

struct FamilyCell {
    help: &'static str,
    kind: MetricKind,
    /// label-signature → (labels, value); BTreeMap for stable output.
    samples: BTreeMap<String, (Vec<(String, String)>, Value)>,
}

static REGISTRY: Mutex<BTreeMap<String, FamilyCell>> = Mutex::new(BTreeMap::new());

/// Maps a dotted event name onto the `snet_*` namespace: non-alphanumeric
/// characters become `_`, counters gain the conventional `_total`.
pub fn prom_name(dotted: &str, kind: MetricKind) -> String {
    let mut out = String::with_capacity(dotted.len() + 16);
    out.push_str("snet_");
    for c in dotted.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if kind == MetricKind::Counter && !out.ends_with("_total") {
        out.push_str("_total");
    }
    out
}

/// Help strings for the signals the workspace emits today. Series
/// recorded under other names render without a `# HELP` line.
fn help_for(dotted: &str) -> &'static str {
    match dotted {
        "store.hits" => "Store lookups served from the on-disk cache",
        "store.misses" => "Store lookups that fell through to recomputation",
        "store.bytes" => "Artifact bytes read from or written to the store",
        "store.writes" => "Artifacts written to the store",
        "store.quarantined" => "Corrupt store entries moved aside",
        "store.gc.removed" => "Entries removed by store garbage collection",
        "store.disk_bytes" => "On-disk size of the artifact store at last stat",
        "store.disk_entries" => "Entry count of the artifact store at last stat",
        "search.nodes" => "Search tree nodes expanded",
        "search.heartbeat" => "Search liveness heartbeat (one tick per 128 nodes)",
        "search.rounds" => "Completed search rounds (one per depth budget)",
        "search.steals" => "Tasks stolen between search workers",
        "search.tt.hit" => "Transposition-table hits",
        "search.tt.miss" => "Transposition-table misses",
        "search.tt.store" => "Transposition-table stores",
        "search.tt.evict" => "Transposition-table evictions",
        "search.tt.preloaded" => "Transposition entries preloaded from the store",
        "search.tt.spilled" => "Transposition entries spilled to the store",
        "search.oracle.cut" => "Branches cut by the depth oracle",
        "search.subsumed" => "Prefixes pruned by subsumption",
        "search.noop.skip" => "No-op comparator placements skipped",
        "search.witness.skip" => "Placements skipped by witness filtering",
        "search.task.nodes" => "Nodes expanded per search task",
        "search.task.us" => "Wall microseconds per search task",
        "search.cancelled" => "Search runs stopped by a cancel token",
        "runtime.traversals" => "Tokens that fully traversed the counting network",
        "runtime.balancer_ops" => "Total balancer visits absorbed by the network",
        "runtime.balancer.visits" => "Visits per balancer (flat means even load spread)",
        "check.inputs" => "0-1 input vectors checked",
        "ir.pass.ns" => "Wall nanoseconds per IR pass run",
        "sched.schedules" => "Interleaving schedules explored",
        "sched.failing" => "Schedules that violated the step property",
        "adversary.retained_mass" => "Input mass retained by the adversary",
        "adversary.evictions" => "Inputs evicted by the adversary argument",
        "http.request.duration" => {
            "HTTP request latency in microseconds by endpoint, status, and cache disposition"
        }
        "http.in_flight" => "HTTP requests currently being handled",
        "http.probe.requests" => "Health and metrics probe hits, kept out of job-path counters",
        "http.slow.captured" => "Slow requests whose span trees were dumped via the flight path",
        "http.traced" => "Requests that arrived with a client trace context",
        "httpd.requests" => "HTTP requests the service accepted for routing",
        "httpd.responses" => "HTTP responses the service sent",
        "httpd.rejected" => "HTTP requests refused as malformed or over limits",
        "httpd.connections" => "TCP connections the service accepted",
        "jobs.submitted" => "Service jobs created",
        "jobs.completed" => "Service jobs that finished with a result",
        "jobs.cancelled" => "Service jobs stopped before completion",
        "jobs.failed" => "Service jobs that ended in an error",
        "jobs.coalesced" => "Requests attached to an identical in-flight job",
        "jobs.running" => "Service jobs currently executing",
        _ => "",
    }
}

fn label_sig(labels: &[(&str, &str)]) -> String {
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    parts.sort();
    parts.join("\u{1}")
}

fn with_cell<R>(
    dotted: &str,
    kind: MetricKind,
    labels: &[(&str, &str)],
    f: impl FnOnce(&mut Value) -> R,
) -> R {
    let name = prom_name(dotted, kind);
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let cell = reg.entry(name).or_insert_with(|| FamilyCell {
        help: help_for(dotted),
        kind,
        samples: BTreeMap::new(),
    });
    let (_, value) = cell.samples.entry(label_sig(labels)).or_insert_with(|| {
        let mut owned: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        owned.sort();
        let zero = match kind {
            MetricKind::Counter => Value::Counter(0.0),
            MetricKind::Gauge => Value::Gauge(0.0),
            MetricKind::Histogram => Value::Hist(HistSnapshot::default()),
        };
        (owned, zero)
    });
    f(value)
}

pub(crate) fn record_counter(dotted: &str, delta: f64) {
    record_counter_labeled(dotted, &[], delta);
}

pub(crate) fn record_counter_labeled(dotted: &str, labels: &[(&str, &str)], delta: f64) {
    with_cell(dotted, MetricKind::Counter, labels, |v| {
        if let Value::Counter(total) = v {
            *total += delta;
        }
    });
}

pub(crate) fn record_gauge(dotted: &str, sample: f64) {
    record_gauge_labeled(dotted, &[], sample);
}

pub(crate) fn record_gauge_labeled(dotted: &str, labels: &[(&str, &str)], sample: f64) {
    with_cell(dotted, MetricKind::Gauge, labels, |v| {
        if let Value::Gauge(g) = v {
            *g = sample;
        }
    });
}

pub(crate) fn record_hist(dotted: &str, snap: &HistSnapshot) {
    with_cell(dotted, MetricKind::Histogram, &[], |v| {
        if let Value::Hist(h) = v {
            h.merge(snap);
        }
    });
}

pub(crate) fn record_hist_sample(dotted: &str, labels: &[(&str, &str)], sample: u64) {
    with_cell(dotted, MetricKind::Histogram, labels, |v| {
        if let Value::Hist(h) = v {
            h.record(sample);
        }
    });
}

/// The accumulated total of a counter recorded under `dotted`, or `None`
/// if the series was never touched. Used by `snetctl store stat` to show
/// this process's cache traffic without a trace file.
pub fn counter_value(dotted: &str) -> Option<f64> {
    let name = prom_name(dotted, MetricKind::Counter);
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let cell = reg.get(&name)?;
    cell.samples.values().find_map(|(labels, v)| match v {
        Value::Counter(total) if labels.is_empty() => Some(*total),
        _ => None,
    })
}

/// The accumulated total of the labeled counter series matching exactly
/// `labels` (order-insensitive), or `None` if never touched.
pub fn counter_value_labeled(dotted: &str, labels: &[(&str, &str)]) -> Option<f64> {
    let name = prom_name(dotted, MetricKind::Counter);
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let cell = reg.get(&name)?;
    let (_, v) = cell.samples.get(&label_sig(labels))?;
    match v {
        Value::Counter(total) => Some(*total),
        _ => None,
    }
}

/// A consistent copy of every registered family, sorted by name.
pub fn snapshot() -> Vec<Family> {
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    reg.iter()
        .map(|(name, cell)| Family {
            name: name.clone(),
            help: cell.help.to_string(),
            kind: cell.kind,
            samples: cell
                .samples
                .values()
                .map(|(labels, value)| Sample { labels: labels.clone(), value: value.clone() })
                .collect(),
        })
        .collect()
}

/// Process-level families computed at scrape time: uptime, resident set
/// size, and (with the `alloc` feature) allocator accounting.
pub fn process_families() -> Vec<Family> {
    let mut out = Vec::new();
    let gauge = |name: &str, help: &str, v: f64| Family {
        name: name.to_string(),
        help: help.to_string(),
        kind: MetricKind::Gauge,
        samples: vec![Sample { labels: Vec::new(), value: Value::Gauge(v) }],
    };
    let counter = |name: &str, help: &str, v: f64| Family {
        name: name.to_string(),
        help: help.to_string(),
        kind: MetricKind::Counter,
        samples: vec![Sample { labels: Vec::new(), value: Value::Counter(v) }],
    };
    out.push(gauge(
        "snet_process_uptime_seconds",
        "Seconds since the observation epoch (first instrumented call)",
        crate::now_us() as f64 / 1e6,
    ));
    if let Some(rss) = resident_bytes() {
        out.push(gauge(
            "snet_process_resident_memory_bytes",
            "Resident set size sampled from /proc/self/status",
            rss as f64,
        ));
    }
    if let Some(stats) = crate::alloc::stats() {
        out.push(gauge(
            "snet_mem_live_bytes",
            "Heap bytes currently live (counting allocator)",
            stats.live_bytes as f64,
        ));
        out.push(gauge(
            "snet_mem_peak_bytes",
            "Peak live heap bytes (counting allocator)",
            stats.peak_bytes as f64,
        ));
        out.push(counter(
            "snet_alloc_total",
            "Heap allocations performed (counting allocator)",
            stats.total_allocs as f64,
        ));
        out.push(counter(
            "snet_alloc_bytes_total",
            "Heap bytes allocated over the process lifetime (counting allocator)",
            stats.total_bytes as f64,
        ));
    }
    out
}

/// Resident set size in bytes from `/proc/self/status` (`VmRSS`), or
/// `None` off Linux.
pub fn resident_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Registry plus process families — everything a `/metrics` scrape
/// should see.
pub fn gather() -> Vec<Family> {
    let mut fams = snapshot();
    fams.extend(process_families());
    fams
}

/// The full Prometheus text exposition for this process.
pub fn render_prometheus() -> String {
    crate::promtext::render(&gather())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_names_map_dots_and_suffix_counters() {
        assert_eq!(prom_name("store.hits", MetricKind::Counter), "snet_store_hits_total");
        assert_eq!(prom_name("work.progress", MetricKind::Gauge), "snet_work_progress");
        assert_eq!(prom_name("search.task.nodes", MetricKind::Histogram), "snet_search_task_nodes");
        assert_eq!(prom_name("weird-name.x", MetricKind::Gauge), "snet_weird_name_x");
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        record_counter("regtest.unique.counter", 2.0);
        record_counter("regtest.unique.counter", 3.0);
        record_gauge("regtest.unique.gauge", 1.0);
        record_gauge("regtest.unique.gauge", 9.0);
        assert_eq!(counter_value("regtest.unique.counter"), Some(5.0));
        let fams = snapshot();
        let g = fams.iter().find(|f| f.name == "snet_regtest_unique_gauge").unwrap();
        assert_eq!(g.samples[0].value, Value::Gauge(9.0));
    }

    #[test]
    fn labeled_histograms_keep_series_apart() {
        record_hist_sample("regtest.pass.ns", &[("pass", "canon")], 10);
        record_hist_sample("regtest.pass.ns", &[("pass", "canon")], 20);
        record_hist_sample("regtest.pass.ns", &[("pass", "relayer")], 5);
        let fams = snapshot();
        let f = fams.iter().find(|f| f.name == "snet_regtest_pass_ns").unwrap();
        assert_eq!(f.kind, MetricKind::Histogram);
        assert_eq!(f.samples.len(), 2);
        let canon = f
            .samples
            .iter()
            .find(|s| s.labels == vec![("pass".to_string(), "canon".to_string())])
            .unwrap();
        match &canon.value {
            Value::Hist(h) => assert_eq!((h.count, h.sum), (2, 30)),
            other => panic!("expected hist, got {other:?}"),
        }
    }

    #[test]
    fn process_families_always_include_uptime() {
        let fams = process_families();
        assert!(fams.iter().any(|f| f.name == "snet_process_uptime_seconds"));
    }
}
