//! The [`RunManifest`]: provenance captured once at run start so every
//! trace file and `results/*.json` row records what produced it.

use crate::event::{write_json_string, Event, EventKind};

/// Schema identifier stamped into every manifest; bump on breaking
/// changes so stale result files are detectable.
pub const MANIFEST_SCHEMA: &str = "snet-obs-manifest/1";

/// Provenance of one run: what binary, on what commit, with what
/// toolchain and parallelism, started when, on which host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// [`MANIFEST_SCHEMA`].
    pub schema: String,
    /// The producing tool (e.g. `snetctl`, `engine_baseline`).
    pub tool: String,
    /// Command-line arguments after the binary name.
    pub args: Vec<String>,
    /// `git rev-parse HEAD` of the working tree, or `unknown`.
    pub git_commit: String,
    /// `rustc -V` of the toolchain on `PATH`, or `unknown`.
    pub rustc_version: String,
    /// [`std::thread::available_parallelism`] at capture time.
    pub available_parallelism: usize,
    /// The raw `SNET_THREADS` environment override, if set.
    pub snet_threads: Option<String>,
    /// Milliseconds since the Unix epoch at capture time.
    pub started_unix_ms: u64,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// `$HOSTNAME`, or `unknown`.
    pub host: String,
    /// Tool-specific provenance appended by [`RunManifest::with_extra`]
    /// (e.g. the `--seed` of a randomized run); rendered after the fixed
    /// fields in declaration order.
    pub extras: Vec<(String, String)>,
}

fn command_line(bin: &str, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(bin).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
    if text.is_empty() {
        None
    } else {
        Some(text)
    }
}

impl RunManifest {
    /// Captures the manifest for `tool` from the current environment.
    /// Never fails: unavailable fields degrade to `"unknown"`.
    pub fn capture(tool: &str) -> Self {
        RunManifest {
            schema: MANIFEST_SCHEMA.to_string(),
            tool: tool.to_string(),
            args: std::env::args().skip(1).collect(),
            git_commit: command_line("git", &["rev-parse", "HEAD"])
                .unwrap_or_else(|| "unknown".into()),
            rustc_version: command_line("rustc", &["-V"]).unwrap_or_else(|| "unknown".into()),
            available_parallelism: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            snet_threads: std::env::var("SNET_THREADS").ok(),
            started_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            host: std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown".into()),
            extras: Vec::new(),
        }
    }

    /// Appends one tool-specific provenance pair (builder style). Keys
    /// shadowing a fixed field are kept as-is: both appear, the extra
    /// last, so readers keyed on the fixed schema are unaffected.
    pub fn with_extra(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.push_extra(key, value);
        self
    }

    /// In-place form of [`RunManifest::with_extra`] for call sites that
    /// add extras conditionally or in a loop — no rebinding, no moves.
    pub fn push_extra(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.extras.push((key.into(), value.into()));
    }

    /// The manifest as flat string key/value pairs (the event-attr and
    /// report representation).
    pub fn fields(&self) -> Vec<(String, String)> {
        let mut out = vec![
            ("schema".into(), self.schema.clone()),
            ("tool".into(), self.tool.clone()),
            ("args".into(), self.args.join(" ")),
            ("git_commit".into(), self.git_commit.clone()),
            ("rustc_version".into(), self.rustc_version.clone()),
            ("available_parallelism".into(), self.available_parallelism.to_string()),
            ("snet_threads".into(), self.snet_threads.clone().unwrap_or_else(|| "unset".into())),
            ("started_unix_ms".into(), self.started_unix_ms.to_string()),
            ("os".into(), self.os.clone()),
            ("arch".into(), self.arch.clone()),
            ("host".into(), self.host.clone()),
        ];
        out.extend(self.extras.iter().cloned());
        out
    }

    /// Renders the manifest as one flat JSON object (all values strings),
    /// suitable for embedding into a larger JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, k);
            out.push(':');
            write_json_string(&mut out, v);
        }
        out.push('}');
        out
    }

    /// The manifest as an [`Event`] (kind [`EventKind::Manifest`]).
    pub fn to_event(&self) -> Event {
        Event {
            kind: EventKind::Manifest,
            name: "run.manifest".into(),
            id: 0,
            parent: 0,
            thread: 0,
            t_us: crate::now_us(),
            dur_us: 0,
            value: 0.0,
            attrs: self.fields(),
        }
    }

    /// Emits the manifest to every installed sink (no-op when disabled).
    pub fn emit(&self) {
        crate::emit_event(self.to_event());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_total_and_json_parses() {
        let m = RunManifest::capture("unit-test");
        assert_eq!(m.schema, MANIFEST_SCHEMA);
        assert_eq!(m.tool, "unit-test");
        assert!(m.available_parallelism >= 1);
        assert!(!m.os.is_empty() && !m.arch.is_empty());
        // The flat-JSON form parses back through the report-side parser.
        let line = m.to_event().to_json_line();
        let back = crate::report::parse_event_line(&line).expect("manifest line parses");
        assert_eq!(back.kind, EventKind::Manifest);
        assert_eq!(back.attr("tool"), Some("unit-test"));
        assert_eq!(back.attr("schema"), Some(MANIFEST_SCHEMA));
    }

    #[test]
    fn extras_ride_after_the_fixed_fields() {
        let m = RunManifest::capture("unit-test").with_extra("seed", "41");
        let fields = m.fields();
        assert_eq!(fields.last().map(|(k, v)| (k.as_str(), v.as_str())), Some(("seed", "41")));
        let back = crate::report::parse_event_line(&m.to_event().to_json_line())
            .expect("manifest line parses");
        assert_eq!(back.attr("seed"), Some("41"));
    }
}
