//! `snet_obs` — dependency-free structured observability for the
//! workspace: spans, counters, gauges, a per-thread event buffer drained
//! to pluggable [`Sink`]s, and a [`RunManifest`] recording what produced
//! a run.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** No sink installed and the flight
//!    recorder off ⇒ every entry point is a pair of relaxed atomic loads
//!    and an early return; no allocation, no locking, no time syscalls.
//!    Hot loops stay uninstrumented — only phase boundaries (compiles,
//!    passes, shards, adversary rounds) emit.
//! 2. **No dependencies.** Consistent with the offline `vendor/` policy;
//!    JSON encoding and the report-side parser are hand-rolled for the
//!    small subset the event model needs.
//! 3. **Thread-aware.** Events buffer in a thread-local queue (no global
//!    lock on the emit path until a drain), spans nest via a thread-local
//!    stack, and cross-thread nesting (worker shards under a coordinator
//!    span) is explicit via [`span_under`].
//!
//! Three service-grade layers sit on the same event stream:
//!
//! * the [`flight`] recorder — per-thread byte rings holding the most
//!   recent events, dumped to `flight-<pid>.jsonl` by the panic hook
//!   ([`enable_flight`], [`dump_flight`]);
//! * the [`registry`] — counters/gauges/histograms aggregated under
//!   `snet_*` Prometheus names, rendered by [`promtext`]
//!   ([`registry::render_prometheus`]);
//! * [`alloc`] — opt-in allocation accounting behind the `alloc`
//!   feature, surfaced as registry gauges and per-span attrs.
//!
//! Typical wiring (the `snetctl` entry point):
//!
//! ```no_run
//! use std::sync::Arc;
//! let sink = Arc::new(snet_obs::JsonlSink::create("trace.jsonl").unwrap());
//! snet_obs::install_sink(sink);
//! snet_obs::RunManifest::capture("snetctl").emit();
//! {
//!     let _span = snet_obs::span("work").attr("n", 16);
//!     snet_obs::counter("items", 3);
//! }
//! snet_obs::flush();
//! ```

pub mod alloc;
pub mod baseline;
pub mod chrome;
pub mod event;
pub mod flight;
pub mod hist;
pub mod manifest;
pub mod promtext;
pub mod registry;
pub mod report;
pub mod sink;
pub mod tracectx;

pub use baseline::{Baseline, BaselineDiff, BASELINE_SCHEMA};
pub use chrome::{to_chrome_trace, trace_to_chrome};
pub use event::{Event, EventKind};
pub use flight::{arm_fault_after, dump_flight, flight_snapshot, DEFAULT_RING_BYTES};
pub use hist::{HistSnapshot, Histogram, ShardedCounter};
pub use manifest::{RunManifest, MANIFEST_SCHEMA};
pub use sink::{JsonlSink, MemorySink, ProgressSink, Sink};
pub use tracectx::{TraceContext, TraceId, LINK_ATTR, TRACE_ATTR, TRACE_HEADER};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, Once, RwLock};
use std::time::Instant;

/// Fast global switch: true iff at least one sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Installed sinks, keyed by handle for removal.
static SINKS: RwLock<Vec<(u64, Arc<dyn Sink>)>> = RwLock::new(Vec::new());
static NEXT_SINK: AtomicU64 = AtomicU64::new(1);
/// Span ids are global and increase over time, so a child's id is always
/// larger than its parent's (the report reconstructor relies on this).
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

/// Events buffered per thread before a drain grabs the sink lock.
const BUFFER_CAPACITY: usize = 128;

/// Every live thread's event buffer. [`flush`] drains them all, so a
/// process-exit (or panic-hook) flush cannot lose events buffered by
/// worker threads that are still alive — only the owning thread pushes,
/// so a `try_lock` here contends only with that thread mid-emit.
static BUFFERS: Mutex<Vec<std::sync::Weak<Mutex<Vec<Event>>>>> = Mutex::new(Vec::new());

struct ThreadState {
    ordinal: u64,
    buf: Arc<Mutex<Vec<Event>>>,
    stack: Vec<u64>,
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        if let Ok(mut buf) = self.buf.try_lock() {
            let mut events = std::mem::take(&mut *buf);
            drop(buf);
            drain(&mut events);
        }
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new({
        let buf: Arc<Mutex<Vec<Event>>> = Arc::new(Mutex::new(Vec::new()));
        BUFFERS.lock().unwrap_or_else(|p| p.into_inner()).push(Arc::downgrade(&buf));
        ThreadState {
            ordinal: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            buf,
            stack: Vec::new(),
        }
    });
}

/// True iff events are being recorded: a sink is installed or the
/// flight recorder is on. Callers may use this to skip building
/// expensive attributes; every emit function checks it internally.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || flight::is_on()
}

/// Turns the flight recorder on (installing the panic-dump hook), with
/// an optional per-thread ring capacity in bytes
/// ([`DEFAULT_RING_BYTES`] otherwise). `snetctl` calls this on startup
/// unless `SNET_FLIGHT=0`; a clean exit leaves no files behind.
pub fn enable_flight(ring_bytes: Option<usize>) {
    if let Some(b) = ring_bytes {
        flight::set_ring_bytes(b);
    }
    install_panic_flush_hook();
    flight::set_on(true);
}

/// Turns the flight recorder off (rings and their contents survive for
/// a later [`dump_flight`]).
pub fn disable_flight() {
    flight::set_on(false);
}

/// True iff the flight recorder is capturing.
pub fn flight_enabled() -> bool {
    flight::is_on()
}

/// Records one sample into a labeled registry histogram (e.g. per-pass
/// timings under `{pass="..."}`). Registry-only: labeled series have no
/// event-stream equivalent. No-op when observation is disabled.
pub fn observe(name: &str, labels: &[(&str, &str)], sample: u64) {
    if !enabled() {
        return;
    }
    registry::record_hist_sample(name, labels, sample);
}

/// Increments a labeled registry counter (e.g. probe hits under
/// `{endpoint="/healthz"}`). Registry-only, like [`observe`]: labeled
/// series have no event-stream equivalent. No-op when disabled.
pub fn counter_labeled(name: &str, labels: &[(&str, &str)], delta: u64) {
    if !enabled() {
        return;
    }
    registry::record_counter_labeled(name, labels, delta as f64);
}

/// Sets a labeled registry gauge (e.g. the in-flight request gauge).
/// Registry-only, like [`observe`]. No-op when disabled.
pub fn gauge_labeled(name: &str, labels: &[(&str, &str)], value: f64) {
    if !enabled() {
        return;
    }
    registry::record_gauge_labeled(name, labels, value);
}

/// Microseconds since the process-wide observation epoch (first use).
pub fn now_us() -> u64 {
    EPOCH.elapsed().as_micros() as u64
}

/// Handle returned by [`install_sink`], accepted by [`remove_sink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkHandle(u64);

/// Installs a sink and enables event emission. Returns a handle for
/// targeted removal.
///
/// The first installation also chains a panic hook that flushes the
/// calling thread's buffer and every sink, so a panicking run still
/// leaves a parseable (truncated-but-valid) trace file.
pub fn install_sink(sink: Arc<dyn Sink>) -> SinkHandle {
    install_panic_flush_hook();
    let id = NEXT_SINK.fetch_add(1, Ordering::Relaxed);
    let mut sinks = SINKS.write().expect("sink registry poisoned");
    sinks.push((id, sink));
    ENABLED.store(true, Ordering::Relaxed);
    SinkHandle(id)
}

/// Chains the previous panic hook with a [`flush`] (so buffered events
/// reach their sinks) and a flight dump (so the ring contents survive
/// the death). Installed once, by the first [`install_sink`] or
/// [`enable_flight`]; a fully disabled process never touches the hook.
fn install_panic_flush_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flush();
            // Only dump while the recorder is on: a caught panic in a
            // process that turned it off (or never turned it on) must
            // not litter the working directory with ring contents left
            // from an earlier enabled window.
            if flight::is_on() {
                let _ = flight::dump_flight();
            }
            previous(info);
        }));
    });
}

/// Removes one sink (flushing it first); emission disables when the last
/// sink is gone.
pub fn remove_sink(handle: SinkHandle) {
    flush();
    let mut sinks = SINKS.write().expect("sink registry poisoned");
    sinks.retain(|(id, _)| *id != handle.0);
    if sinks.is_empty() {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// Drains every registered thread buffer — not just the caller's — and
/// flushes every sink. Call once before process exit so buffered JSONL
/// lines hit the file even from worker threads that are still alive.
///
/// Safe to call from a panic hook or thread-local destructor: buffers
/// are taken with `try_lock` (a thread wedged mid-emit is skipped, not
/// deadlocked) and a poisoned sink registry is read through anyway
/// (sinks are append-only, so the data is still coherent).
pub fn flush() {
    let buffers: Vec<Arc<Mutex<Vec<Event>>>> = {
        let mut registered = BUFFERS.lock().unwrap_or_else(|p| p.into_inner());
        registered.retain(|w| w.strong_count() > 0);
        registered.iter().filter_map(|w| w.upgrade()).collect()
    };
    for buf in buffers {
        if let Ok(mut guard) = buf.try_lock() {
            let mut events = std::mem::take(&mut *guard);
            drop(guard);
            drain(&mut events);
        }
    }
    let sinks = SINKS.read().unwrap_or_else(|p| p.into_inner());
    for (_, sink) in sinks.iter() {
        sink.flush();
    }
}

fn drain(buf: &mut Vec<Event>) {
    if buf.is_empty() {
        return;
    }
    let sinks = SINKS.read().unwrap_or_else(|p| p.into_inner());
    for e in buf.drain(..) {
        for (_, sink) in sinks.iter() {
            sink.event(&e);
        }
    }
}

/// Records an event: appends it to the flight ring (when recording),
/// then queues it on the calling thread's sink buffer; the buffer
/// drains when it fills or the event is latency-sensitive (gauges drive
/// live progress displays; manifests must lead the trace file).
pub(crate) fn emit_event(e: Event) {
    let sinks_on = ENABLED.load(Ordering::Relaxed);
    let flight_on = flight::is_on();
    if !sinks_on && !flight_on {
        return;
    }
    // The ring sees the event before anything that can fail or panic
    // (sink I/O, the injected-fault tick below): the recorder's whole
    // job is holding the last events leading up to a death.
    if flight_on {
        flight::record(&e);
    }
    if sinks_on {
        // SpanEnds drain eagerly, not just for latency: `thread::scope`
        // returns when the spawned *closures* finish, while thread-local
        // destructors run later during OS-thread teardown — a buffer
        // drained only by the TLS destructor can miss the coordinator's
        // snapshot. Spans mark phase boundaries, so their ends are
        // natural batch edges.
        let urgent = matches!(
            e.kind,
            EventKind::SpanEnd | EventKind::Gauge | EventKind::Hist | EventKind::Manifest
        );
        let mut spill: Vec<Event> = Vec::new();
        let _ = TLS.try_with(|tls| {
            let Ok(st) = tls.try_borrow() else {
                return;
            };
            let Ok(mut buf) = st.buf.try_lock() else {
                return; // re-entrant emit from inside a drain: drop it
            };
            buf.push(e);
            if urgent || buf.len() >= BUFFER_CAPACITY {
                spill = std::mem::take(&mut *buf);
            }
        });
        drain(&mut spill);
    }
    flight::fault_tick();
}

fn fill_thread_fields(e: &mut Event) {
    let _ = TLS.try_with(|tls| {
        if let Ok(st) = tls.try_borrow() {
            e.thread = st.ordinal;
            if e.parent == 0 {
                e.parent = st.stack.last().copied().unwrap_or(0);
            }
        }
    });
}

/// Event name under which [`thread_lane`] publishes a lane label.
/// Consumed by the Chrome exporter (thread metadata) and skipped by
/// report tables; not mirrored into the registry.
pub const THREAD_LANE_EVENT: &str = "obs.thread.lane";

/// Publishes a stable lane label for the calling thread (e.g.
/// `http-worker-3`, `search-worker-0`), so trace exports name pool
/// threads by role instead of the generic `worker-N` ordinal. Emit once
/// per thread, right after it starts; the last label emitted wins.
pub fn thread_lane(label: impl Into<String>) {
    if !enabled() {
        return;
    }
    let mut e = Event {
        kind: EventKind::Gauge,
        name: THREAD_LANE_EVENT.to_string(),
        id: 0,
        parent: 0,
        thread: 0,
        t_us: now_us(),
        dur_us: 0,
        value: 0.0,
        attrs: vec![("lane".to_string(), label.into())],
    };
    fill_thread_fields(&mut e);
    emit_event(e);
}

/// The calling thread's small per-process ordinal (0 for the first
/// thread to observe anything). Used by [`ShardedCounter`] to pick a
/// shard and by reports to label worker lanes. Returns 0 if the
/// thread-local state is already torn down.
pub fn thread_ordinal() -> u64 {
    TLS.try_with(|tls| tls.try_borrow().map(|st| st.ordinal).unwrap_or(0)).unwrap_or(0)
}

/// An RAII span: emits `SpanStart` on creation and `SpanEnd` (carrying
/// duration and accumulated attrs) on drop. Inert when no sink is
/// installed. Obtain via [`span`] or [`span_under`].
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct SpanGuard {
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    attrs: Vec<(String, String)>,
    /// Allocator counters at span open, for per-span memory attribution
    /// on exit (`alloc` feature only).
    #[cfg(feature = "alloc")]
    alloc0_bytes: u64,
    #[cfg(feature = "alloc")]
    peak0_bytes: u64,
}

fn new_guard(id: u64, parent: u64, name: &'static str, start_us: u64) -> SpanGuard {
    SpanGuard {
        id,
        parent,
        name,
        start_us,
        attrs: Vec::new(),
        #[cfg(feature = "alloc")]
        alloc0_bytes: alloc::stats().map_or(0, |s| s.total_bytes),
        #[cfg(feature = "alloc")]
        peak0_bytes: alloc::stats().map_or(0, |s| s.peak_bytes),
    }
}

/// Opens a span nested under the calling thread's current span.
pub fn span(name: &'static str) -> SpanGuard {
    span_impl(name, None)
}

/// Opens a span under an explicit parent id — the cross-thread variant
/// (e.g. worker shards under the coordinator's span). `parent` is
/// usually [`SpanGuard::id`] from another thread.
pub fn span_under(name: &'static str, parent: u64) -> SpanGuard {
    span_impl(name, Some(parent))
}

fn span_impl(name: &'static str, explicit_parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return new_guard(0, 0, name, 0);
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let t_us = now_us();
    let mut parent = explicit_parent.unwrap_or(0);
    let mut thread = 0;
    let _ = TLS.try_with(|tls| {
        if let Ok(mut st) = tls.try_borrow_mut() {
            thread = st.ordinal;
            if explicit_parent.is_none() {
                parent = st.stack.last().copied().unwrap_or(0);
            }
            st.stack.push(id);
        }
    });
    emit_event(Event {
        kind: EventKind::SpanStart,
        name: name.to_string(),
        id,
        parent,
        thread,
        t_us,
        dur_us: 0,
        value: 0.0,
        attrs: Vec::new(),
    });
    new_guard(id, parent, name, t_us)
}

impl SpanGuard {
    /// True iff the span is recording (a sink was installed when it
    /// opened).
    pub fn is_active(&self) -> bool {
        self.id != 0
    }

    /// The span id (0 when inert) — pass to [`span_under`] for
    /// cross-thread nesting.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches an attribute (builder form). No-op when inert, so
    /// callers can chain unconditionally.
    pub fn attr(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        self.add_attr(key, value);
        self
    }

    /// Attaches an attribute to an already-bound span (e.g. a result
    /// computed mid-span).
    pub fn add_attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if self.id != 0 {
            self.attrs.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        #[cfg(feature = "alloc")]
        if let Some(s) = alloc::stats() {
            let allocated = s.total_bytes.saturating_sub(self.alloc0_bytes);
            self.attrs.push(("mem_alloc_b".to_string(), allocated.to_string()));
            if s.peak_bytes > self.peak0_bytes {
                self.attrs.push(("mem_peak_b".to_string(), s.peak_bytes.to_string()));
            }
        }
        let t_us = now_us();
        let mut thread = 0;
        let _ = TLS.try_with(|tls| {
            if let Ok(mut st) = tls.try_borrow_mut() {
                thread = st.ordinal;
                // Pop through this span's id: panics unwinding past inner
                // guards must not wedge the stack.
                while let Some(top) = st.stack.pop() {
                    if top == self.id {
                        break;
                    }
                }
            }
        });
        emit_event(Event {
            kind: EventKind::SpanEnd,
            name: self.name.to_string(),
            id: self.id,
            parent: self.parent,
            thread,
            t_us,
            dur_us: t_us.saturating_sub(self.start_us),
            value: 0.0,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

/// Increments a counter. Aggregated by name in reports; the enclosing
/// span (if any) is recorded as parent.
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    registry::record_counter(name, delta as f64);
    let mut e = Event {
        kind: EventKind::Counter,
        name: name.to_string(),
        id: 0,
        parent: 0,
        thread: 0,
        t_us: now_us(),
        dur_us: 0,
        value: delta as f64,
        attrs: Vec::new(),
    };
    fill_thread_fields(&mut e);
    emit_event(e);
}

/// Records a gauge sample (last value wins in reports). Gauges drain
/// immediately — they drive live progress sinks.
pub fn gauge(name: &'static str, value: f64) {
    gauge_with(name, value, Vec::new());
}

/// [`gauge`] with attributes (e.g. the progress attrs `done`, `total`,
/// `per_sec`, `eta_s` that [`ProgressSink`] renders).
pub fn gauge_with(name: &'static str, value: f64, attrs: Vec<(String, String)>) {
    if !enabled() {
        return;
    }
    registry::record_gauge(name, value);
    let mut e = Event {
        kind: EventKind::Gauge,
        name: name.to_string(),
        id: 0,
        parent: 0,
        thread: 0,
        t_us: now_us(),
        dur_us: 0,
        value,
        attrs,
    };
    fill_thread_fields(&mut e);
    emit_event(e);
}

/// Emits a histogram snapshot (aggregated by name in reports; see
/// [`HistSnapshot::merge`]). Snapshotting is the caller's job so hot
/// loops can keep recording into a shared [`Histogram`] and emit only at
/// phase boundaries.
pub fn hist(name: &str, snap: &HistSnapshot) {
    if !enabled() {
        return;
    }
    registry::record_hist(name, snap);
    let mut e = snap.to_event(name);
    fill_thread_fields(&mut e);
    emit_event(e);
}

/// Test helper: runs `f` with a fresh [`MemorySink`] installed and
/// returns the events it captured. Serialized across threads (the sink
/// registry is global), so concurrent `test_capture` calls — e.g. from
/// different `#[test]`s — cannot observe each other's events.
pub fn test_capture(f: impl FnOnce()) -> Vec<Event> {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let sink = Arc::new(MemorySink::new());
    let handle = install_sink(sink.clone());
    f();
    remove_sink(handle);
    sink.events()
}

/// Serializes every test that installs a sink (the registry is global).
/// [`test_capture`] takes it internally; tests that install their own
/// file-backed sinks should hold it directly.
pub static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emission_is_inert() {
        // Not under test_capture: relies on no sink being installed on
        // entry, which test_capture's lock guarantees for others.
        let events = test_capture(|| {});
        assert!(events.is_empty());
        let span = span("never.recorded");
        assert!(!span.is_active());
        assert_eq!(span.id(), 0);
        drop(span);
        counter("never.counted", 1);
    }

    #[test]
    fn spans_nest_and_attrs_land_on_end_events() {
        let events = test_capture(|| {
            let mut outer = span("outer").attr("n", 16);
            {
                let _inner = span("inner");
                counter("steps", 2);
                counter("steps", 3);
            }
            outer.add_attr("result", "ok");
        });
        let ends: Vec<&Event> = events.iter().filter(|e| e.kind == EventKind::SpanEnd).collect();
        assert_eq!(ends.len(), 2);
        let inner = ends.iter().find(|e| e.name == "inner").unwrap();
        let outer = ends.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.attr("n"), Some("16"));
        assert_eq!(outer.attr("result"), Some("ok"));
        assert!(inner.id > outer.id, "child ids allocate after parents");
        let steps: f64 = events
            .iter()
            .filter(|e| e.kind == EventKind::Counter && e.name == "steps")
            .map(|e| e.value)
            .sum();
        assert_eq!(steps, 5.0);
        // Counters nest under the span open at emission time.
        for c in events.iter().filter(|e| e.kind == EventKind::Counter) {
            assert_eq!(c.parent, inner.id);
        }
    }

    #[test]
    fn cross_thread_spans_nest_under_explicit_parent() {
        let events = test_capture(|| {
            let coordinator = span("coordinator");
            let parent_id = coordinator.id();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(move || {
                        let _shard = span_under("shard", parent_id);
                        counter("shard.work", 1);
                    });
                }
            });
        });
        let coord = events.iter().find(|e| e.kind == EventKind::SpanEnd && e.name == "coordinator");
        let coord_id = coord.expect("coordinator ended").id;
        let shards: Vec<&Event> =
            events.iter().filter(|e| e.kind == EventKind::SpanEnd && e.name == "shard").collect();
        assert_eq!(shards.len(), 2);
        for s in shards {
            assert_eq!(s.parent, coord_id);
        }
    }

    #[test]
    fn hist_events_carry_their_snapshot() {
        let events = test_capture(|| {
            let h = Histogram::new();
            h.record(10);
            h.record(2000);
            hist("task.nodes", &h.snapshot());
        });
        let ev = events.iter().find(|e| e.kind == EventKind::Hist).expect("hist emitted");
        assert_eq!(ev.name, "task.nodes");
        let snap = HistSnapshot::from_attrs(&ev.attrs).expect("snapshot decodes");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 2010);
    }

    #[test]
    fn panicking_run_still_leaves_a_parseable_trace() {
        let dir = std::env::temp_dir().join("snet-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panic-flush.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        // Serialize against every other sink-installing test.
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let handle =
            install_sink(Arc::new(JsonlSink::create(&path_str).expect("create trace file")));
        let result = std::panic::catch_unwind(|| {
            // No enclosing span on purpose: counters are buffered
            // (non-urgent), so only the panic-hook flush can get this
            // increment to disk before the "process" dies.
            counter("work.before_panic", 3);
            panic!("injected failure");
        });
        assert!(result.is_err());
        // Read back *before* remove_sink's flush — the panic hook alone
        // must have produced a parseable trace.
        let text = std::fs::read_to_string(&path).unwrap();
        remove_sink(handle);
        let report = report::parse_trace(&text).expect("truncated trace still parses");
        assert_eq!(report.counters["work.before_panic"].total, 3.0);
    }

    #[test]
    fn flush_drains_buffers_of_threads_still_alive() {
        // Regression: counters are non-urgent and sit in their thread's
        // buffer; a process-exit flush from the main thread used to
        // drain only its own buffer, losing everything buffered by
        // workers that had not yet torn down. The workers here are
        // parked on a barrier — alive, buffers undrained — when the
        // main thread flushes.
        let dir = std::env::temp_dir().join("snet-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live-thread-flush.jsonl");
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let handle = install_sink(Arc::new(
            JsonlSink::create(path.to_str().unwrap()).expect("create trace file"),
        ));
        let emitted = Arc::new(std::sync::Barrier::new(3));
        let release = Arc::new(std::sync::Barrier::new(3));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let emitted = emitted.clone();
                let release = release.clone();
                s.spawn(move || {
                    counter("live.worker.buffered", 1);
                    emitted.wait();
                    release.wait();
                });
            }
            emitted.wait();
            flush();
            let text = std::fs::read_to_string(&path).unwrap();
            let report = report::parse_trace(&text).expect("flushed trace parses");
            assert_eq!(
                report.counters["live.worker.buffered"].total, 2.0,
                "flush must drain buffers of threads that are still alive"
            );
            release.wait();
        });
        remove_sink(handle);
    }

    #[test]
    fn flight_recorder_captures_without_any_sink() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        assert!(!enabled());
        enable_flight(None);
        assert!(enabled(), "flight recording counts as enabled");
        counter("flight.lib.test", 5);
        let span = span("flight.lib.span");
        assert!(span.is_active());
        drop(span);
        disable_flight();
        assert!(!enabled());
        let me = thread_ordinal();
        let snap = flight_snapshot();
        let (_, text) = snap.iter().find(|(t, _)| *t == me).expect("ring registered");
        let (report, skipped) = report::parse_trace_lossy(text);
        assert_eq!(skipped, 0);
        assert!(report.counters["flight.lib.test"].total >= 5.0);
        assert!(report.has_span("flight.lib.span"));
        // Mirrored into the registry under the snet_* namespace too.
        assert!(registry::counter_value("flight.lib.test").unwrap() >= 5.0);
    }

    #[test]
    fn trace_file_roundtrip_through_report() {
        let dir = std::env::temp_dir().join("snet-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let path = path.to_str().unwrap();
        {
            let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            let handle =
                install_sink(Arc::new(JsonlSink::create(path).expect("create trace file")));
            RunManifest::capture("obs-test").emit();
            {
                let _outer = span("phase.outer").attr("k", 3);
                let _inner = span("phase.inner");
                counter("work.items", 7);
                gauge("work.progress", 1.0);
            }
            remove_sink(handle);
        }
        let text = std::fs::read_to_string(path).unwrap();
        let report = report::parse_trace(&text).expect("trace parses");
        assert!(report.has_span("phase.outer"));
        assert!(report.has_span("phase.inner"));
        assert_eq!(report.counters["work.items"].total, 7.0);
        assert_eq!(report.gauges["work.progress"], 1.0);
        let manifest = report.manifest.as_ref().expect("manifest recorded");
        assert!(manifest.iter().any(|(k, v)| k == "tool" && v == "obs-test"));
        let rendered = report::render(&report);
        assert!(rendered.contains("phase.outer") && rendered.contains("work.items"));
    }
}
