//! `snet_obs` — dependency-free structured observability for the
//! workspace: spans, counters, gauges, a per-thread event buffer drained
//! to pluggable [`Sink`]s, and a [`RunManifest`] recording what produced
//! a run.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** No sink installed ⇒ every entry point
//!    is a single relaxed atomic load and an early return; no allocation,
//!    no locking, no time syscalls. Hot loops stay uninstrumented — only
//!    phase boundaries (compiles, passes, shards, adversary rounds) emit.
//! 2. **No dependencies.** Consistent with the offline `vendor/` policy;
//!    JSON encoding and the report-side parser are hand-rolled for the
//!    small subset the event model needs.
//! 3. **Thread-aware.** Events buffer in a thread-local queue (no global
//!    lock on the emit path until a drain), spans nest via a thread-local
//!    stack, and cross-thread nesting (worker shards under a coordinator
//!    span) is explicit via [`span_under`].
//!
//! Typical wiring (the `snetctl` entry point):
//!
//! ```no_run
//! use std::sync::Arc;
//! let sink = Arc::new(snet_obs::JsonlSink::create("trace.jsonl").unwrap());
//! snet_obs::install_sink(sink);
//! snet_obs::RunManifest::capture("snetctl").emit();
//! {
//!     let _span = snet_obs::span("work").attr("n", 16);
//!     snet_obs::counter("items", 3);
//! }
//! snet_obs::flush();
//! ```

pub mod baseline;
pub mod chrome;
pub mod event;
pub mod hist;
pub mod manifest;
pub mod report;
pub mod sink;

pub use baseline::{Baseline, BaselineDiff, BASELINE_SCHEMA};
pub use chrome::{to_chrome_trace, trace_to_chrome};
pub use event::{Event, EventKind};
pub use hist::{HistSnapshot, Histogram, ShardedCounter};
pub use manifest::{RunManifest, MANIFEST_SCHEMA};
pub use sink::{JsonlSink, MemorySink, ProgressSink, Sink};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, Once, RwLock};
use std::time::Instant;

/// Fast global switch: true iff at least one sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Installed sinks, keyed by handle for removal.
static SINKS: RwLock<Vec<(u64, Arc<dyn Sink>)>> = RwLock::new(Vec::new());
static NEXT_SINK: AtomicU64 = AtomicU64::new(1);
/// Span ids are global and increase over time, so a child's id is always
/// larger than its parent's (the report reconstructor relies on this).
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

/// Events buffered per thread before a drain grabs the sink lock.
const BUFFER_CAPACITY: usize = 128;

struct ThreadState {
    ordinal: u64,
    buf: Vec<Event>,
    stack: Vec<u64>,
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        drain(&mut self.buf);
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState {
        ordinal: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        buf: Vec::new(),
        stack: Vec::new(),
    });
}

/// True iff any sink is installed. Callers may use this to skip building
/// expensive attributes; every emit function checks it internally.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process-wide observation epoch (first use).
pub fn now_us() -> u64 {
    EPOCH.elapsed().as_micros() as u64
}

/// Handle returned by [`install_sink`], accepted by [`remove_sink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkHandle(u64);

/// Installs a sink and enables event emission. Returns a handle for
/// targeted removal.
///
/// The first installation also chains a panic hook that flushes the
/// calling thread's buffer and every sink, so a panicking run still
/// leaves a parseable (truncated-but-valid) trace file.
pub fn install_sink(sink: Arc<dyn Sink>) -> SinkHandle {
    install_panic_flush_hook();
    let id = NEXT_SINK.fetch_add(1, Ordering::Relaxed);
    let mut sinks = SINKS.write().expect("sink registry poisoned");
    sinks.push((id, sink));
    ENABLED.store(true, Ordering::Relaxed);
    SinkHandle(id)
}

/// Chains the previous panic hook with a [`flush`] so buffered events
/// reach their sinks before the process aborts. Installed once, on the
/// first [`install_sink`]; a no-sink process never touches the hook.
fn install_panic_flush_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flush();
            previous(info);
        }));
    });
}

/// Removes one sink (flushing it first); emission disables when the last
/// sink is gone.
pub fn remove_sink(handle: SinkHandle) {
    flush();
    let mut sinks = SINKS.write().expect("sink registry poisoned");
    sinks.retain(|(id, _)| *id != handle.0);
    if sinks.is_empty() {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// Drains the calling thread's buffer and flushes every sink. Call once
/// before process exit so buffered JSONL lines hit the file.
///
/// Safe to call from a panic hook or thread-local destructor: TLS access
/// uses `try_with` and a poisoned sink registry is read through anyway
/// (sinks are append-only, so the data is still coherent).
pub fn flush() {
    let _ = TLS.try_with(|tls| {
        if let Ok(mut st) = tls.try_borrow_mut() {
            drain(&mut st.buf);
        }
    });
    let sinks = SINKS.read().unwrap_or_else(|p| p.into_inner());
    for (_, sink) in sinks.iter() {
        sink.flush();
    }
}

fn drain(buf: &mut Vec<Event>) {
    if buf.is_empty() {
        return;
    }
    let sinks = SINKS.read().unwrap_or_else(|p| p.into_inner());
    for e in buf.drain(..) {
        for (_, sink) in sinks.iter() {
            sink.event(&e);
        }
    }
}

/// Queues an event on the calling thread's buffer; drains when the
/// buffer fills or the event is latency-sensitive (gauges drive live
/// progress displays; manifests must lead the trace file).
pub(crate) fn emit_event(e: Event) {
    if !enabled() {
        return;
    }
    // SpanEnds drain eagerly, not just for latency: `thread::scope`
    // returns when the spawned *closures* finish, while thread-local
    // destructors run later during OS-thread teardown — a buffer drained
    // only by the TLS destructor can miss the coordinator's snapshot.
    // Spans mark phase boundaries, so their ends are natural batch edges.
    let urgent = matches!(
        e.kind,
        EventKind::SpanEnd | EventKind::Gauge | EventKind::Hist | EventKind::Manifest
    );
    let _ = TLS.try_with(|tls| {
        let Ok(mut st) = tls.try_borrow_mut() else {
            return; // re-entrant emit from inside a drain: drop it
        };
        st.buf.push(e);
        if urgent || st.buf.len() >= BUFFER_CAPACITY {
            drain(&mut st.buf);
        }
    });
}

fn fill_thread_fields(e: &mut Event) {
    let _ = TLS.try_with(|tls| {
        if let Ok(st) = tls.try_borrow() {
            e.thread = st.ordinal;
            if e.parent == 0 {
                e.parent = st.stack.last().copied().unwrap_or(0);
            }
        }
    });
}

/// The calling thread's small per-process ordinal (0 for the first
/// thread to observe anything). Used by [`ShardedCounter`] to pick a
/// shard and by reports to label worker lanes. Returns 0 if the
/// thread-local state is already torn down.
pub fn thread_ordinal() -> u64 {
    TLS.try_with(|tls| tls.try_borrow().map(|st| st.ordinal).unwrap_or(0)).unwrap_or(0)
}

/// An RAII span: emits `SpanStart` on creation and `SpanEnd` (carrying
/// duration and accumulated attrs) on drop. Inert when no sink is
/// installed. Obtain via [`span`] or [`span_under`].
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct SpanGuard {
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    attrs: Vec<(String, String)>,
}

/// Opens a span nested under the calling thread's current span.
pub fn span(name: &'static str) -> SpanGuard {
    span_impl(name, None)
}

/// Opens a span under an explicit parent id — the cross-thread variant
/// (e.g. worker shards under the coordinator's span). `parent` is
/// usually [`SpanGuard::id`] from another thread.
pub fn span_under(name: &'static str, parent: u64) -> SpanGuard {
    span_impl(name, Some(parent))
}

fn span_impl(name: &'static str, explicit_parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: 0, parent: 0, name, start_us: 0, attrs: Vec::new() };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let t_us = now_us();
    let mut parent = explicit_parent.unwrap_or(0);
    let mut thread = 0;
    let _ = TLS.try_with(|tls| {
        if let Ok(mut st) = tls.try_borrow_mut() {
            thread = st.ordinal;
            if explicit_parent.is_none() {
                parent = st.stack.last().copied().unwrap_or(0);
            }
            st.stack.push(id);
        }
    });
    emit_event(Event {
        kind: EventKind::SpanStart,
        name: name.to_string(),
        id,
        parent,
        thread,
        t_us,
        dur_us: 0,
        value: 0.0,
        attrs: Vec::new(),
    });
    SpanGuard { id, parent, name, start_us: t_us, attrs: Vec::new() }
}

impl SpanGuard {
    /// True iff the span is recording (a sink was installed when it
    /// opened).
    pub fn is_active(&self) -> bool {
        self.id != 0
    }

    /// The span id (0 when inert) — pass to [`span_under`] for
    /// cross-thread nesting.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches an attribute (builder form). No-op when inert, so
    /// callers can chain unconditionally.
    pub fn attr(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        self.add_attr(key, value);
        self
    }

    /// Attaches an attribute to an already-bound span (e.g. a result
    /// computed mid-span).
    pub fn add_attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if self.id != 0 {
            self.attrs.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let t_us = now_us();
        let mut thread = 0;
        let _ = TLS.try_with(|tls| {
            if let Ok(mut st) = tls.try_borrow_mut() {
                thread = st.ordinal;
                // Pop through this span's id: panics unwinding past inner
                // guards must not wedge the stack.
                while let Some(top) = st.stack.pop() {
                    if top == self.id {
                        break;
                    }
                }
            }
        });
        emit_event(Event {
            kind: EventKind::SpanEnd,
            name: self.name.to_string(),
            id: self.id,
            parent: self.parent,
            thread,
            t_us,
            dur_us: t_us.saturating_sub(self.start_us),
            value: 0.0,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

/// Increments a counter. Aggregated by name in reports; the enclosing
/// span (if any) is recorded as parent.
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut e = Event {
        kind: EventKind::Counter,
        name: name.to_string(),
        id: 0,
        parent: 0,
        thread: 0,
        t_us: now_us(),
        dur_us: 0,
        value: delta as f64,
        attrs: Vec::new(),
    };
    fill_thread_fields(&mut e);
    emit_event(e);
}

/// Records a gauge sample (last value wins in reports). Gauges drain
/// immediately — they drive live progress sinks.
pub fn gauge(name: &'static str, value: f64) {
    gauge_with(name, value, Vec::new());
}

/// [`gauge`] with attributes (e.g. the progress attrs `done`, `total`,
/// `per_sec`, `eta_s` that [`ProgressSink`] renders).
pub fn gauge_with(name: &'static str, value: f64, attrs: Vec<(String, String)>) {
    if !enabled() {
        return;
    }
    let mut e = Event {
        kind: EventKind::Gauge,
        name: name.to_string(),
        id: 0,
        parent: 0,
        thread: 0,
        t_us: now_us(),
        dur_us: 0,
        value,
        attrs,
    };
    fill_thread_fields(&mut e);
    emit_event(e);
}

/// Emits a histogram snapshot (aggregated by name in reports; see
/// [`HistSnapshot::merge`]). Snapshotting is the caller's job so hot
/// loops can keep recording into a shared [`Histogram`] and emit only at
/// phase boundaries.
pub fn hist(name: &str, snap: &HistSnapshot) {
    if !enabled() {
        return;
    }
    let mut e = snap.to_event(name);
    fill_thread_fields(&mut e);
    emit_event(e);
}

/// Test helper: runs `f` with a fresh [`MemorySink`] installed and
/// returns the events it captured. Serialized across threads (the sink
/// registry is global), so concurrent `test_capture` calls — e.g. from
/// different `#[test]`s — cannot observe each other's events.
pub fn test_capture(f: impl FnOnce()) -> Vec<Event> {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let sink = Arc::new(MemorySink::new());
    let handle = install_sink(sink.clone());
    f();
    remove_sink(handle);
    sink.events()
}

/// Serializes every test that installs a sink (the registry is global).
/// [`test_capture`] takes it internally; tests that install their own
/// file-backed sinks should hold it directly.
pub static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emission_is_inert() {
        // Not under test_capture: relies on no sink being installed on
        // entry, which test_capture's lock guarantees for others.
        let events = test_capture(|| {});
        assert!(events.is_empty());
        let span = span("never.recorded");
        assert!(!span.is_active());
        assert_eq!(span.id(), 0);
        drop(span);
        counter("never.counted", 1);
    }

    #[test]
    fn spans_nest_and_attrs_land_on_end_events() {
        let events = test_capture(|| {
            let mut outer = span("outer").attr("n", 16);
            {
                let _inner = span("inner");
                counter("steps", 2);
                counter("steps", 3);
            }
            outer.add_attr("result", "ok");
        });
        let ends: Vec<&Event> = events.iter().filter(|e| e.kind == EventKind::SpanEnd).collect();
        assert_eq!(ends.len(), 2);
        let inner = ends.iter().find(|e| e.name == "inner").unwrap();
        let outer = ends.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.attr("n"), Some("16"));
        assert_eq!(outer.attr("result"), Some("ok"));
        assert!(inner.id > outer.id, "child ids allocate after parents");
        let steps: f64 = events
            .iter()
            .filter(|e| e.kind == EventKind::Counter && e.name == "steps")
            .map(|e| e.value)
            .sum();
        assert_eq!(steps, 5.0);
        // Counters nest under the span open at emission time.
        for c in events.iter().filter(|e| e.kind == EventKind::Counter) {
            assert_eq!(c.parent, inner.id);
        }
    }

    #[test]
    fn cross_thread_spans_nest_under_explicit_parent() {
        let events = test_capture(|| {
            let coordinator = span("coordinator");
            let parent_id = coordinator.id();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(move || {
                        let _shard = span_under("shard", parent_id);
                        counter("shard.work", 1);
                    });
                }
            });
        });
        let coord = events.iter().find(|e| e.kind == EventKind::SpanEnd && e.name == "coordinator");
        let coord_id = coord.expect("coordinator ended").id;
        let shards: Vec<&Event> =
            events.iter().filter(|e| e.kind == EventKind::SpanEnd && e.name == "shard").collect();
        assert_eq!(shards.len(), 2);
        for s in shards {
            assert_eq!(s.parent, coord_id);
        }
    }

    #[test]
    fn hist_events_carry_their_snapshot() {
        let events = test_capture(|| {
            let h = Histogram::new();
            h.record(10);
            h.record(2000);
            hist("task.nodes", &h.snapshot());
        });
        let ev = events.iter().find(|e| e.kind == EventKind::Hist).expect("hist emitted");
        assert_eq!(ev.name, "task.nodes");
        let snap = HistSnapshot::from_attrs(&ev.attrs).expect("snapshot decodes");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 2010);
    }

    #[test]
    fn panicking_run_still_leaves_a_parseable_trace() {
        let dir = std::env::temp_dir().join("snet-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panic-flush.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        // Serialize against every other sink-installing test.
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let handle =
            install_sink(Arc::new(JsonlSink::create(&path_str).expect("create trace file")));
        let result = std::panic::catch_unwind(|| {
            // No enclosing span on purpose: counters are buffered
            // (non-urgent), so only the panic-hook flush can get this
            // increment to disk before the "process" dies.
            counter("work.before_panic", 3);
            panic!("injected failure");
        });
        assert!(result.is_err());
        // Read back *before* remove_sink's flush — the panic hook alone
        // must have produced a parseable trace.
        let text = std::fs::read_to_string(&path).unwrap();
        remove_sink(handle);
        let report = report::parse_trace(&text).expect("truncated trace still parses");
        assert_eq!(report.counters["work.before_panic"].total, 3.0);
    }

    #[test]
    fn trace_file_roundtrip_through_report() {
        let dir = std::env::temp_dir().join("snet-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let path = path.to_str().unwrap();
        {
            let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            let handle =
                install_sink(Arc::new(JsonlSink::create(path).expect("create trace file")));
            RunManifest::capture("obs-test").emit();
            {
                let _outer = span("phase.outer").attr("k", 3);
                let _inner = span("phase.inner");
                counter("work.items", 7);
                gauge("work.progress", 1.0);
            }
            remove_sink(handle);
        }
        let text = std::fs::read_to_string(path).unwrap();
        let report = report::parse_trace(&text).expect("trace parses");
        assert!(report.has_span("phase.outer"));
        assert!(report.has_span("phase.inner"));
        assert_eq!(report.counters["work.items"].total, 7.0);
        assert_eq!(report.gauges["work.progress"], 1.0);
        let manifest = report.manifest.as_ref().expect("manifest recorded");
        assert!(manifest.iter().any(|(k, v)| k == "tool" && v == "obs-test"));
        let rendered = report::render(&report);
        assert!(rendered.contains("phase.outer") && rendered.contains("work.items"));
    }
}
