//! Perf baseline store: named metric sets written by the bench bins and
//! diffed across runs (`snetctl bench diff`).
//!
//! A baseline file is one JSON object (schema [`BASELINE_SCHEMA`])
//! holding the producing run's [`RunManifest`](crate::RunManifest)
//! fields — so a regression can always be traced to a toolchain, commit,
//! or thread-count change — and a flat `metrics` map. Comparison
//! direction is inferred from the metric name (see [`Direction::of`]):
//! throughputs regress when they drop, wall times when they rise, and
//! workload-size metrics (node counts) are reported but never fail a
//! diff on their own.

use crate::event::{fmt_f64, write_json_string};
use crate::report::{parse_json_object, JsonValue};
use std::collections::BTreeMap;

/// Schema tag stamped into every baseline file.
pub const BASELINE_SCHEMA: &str = "snet-bench-baseline/1";

/// A named set of scalar metrics from one bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Always [`BASELINE_SCHEMA`] on files this code writes; preserved
    /// verbatim on load so future readers can branch on it.
    pub schema: String,
    /// Scenario name, e.g. `search_n6` — also the default file stem.
    pub name: String,
    /// The producing run's manifest fields (tool, commit, host, …).
    pub manifest: Vec<(String, String)>,
    /// Metric name → value. Sorted map so files serialize stably.
    pub metrics: BTreeMap<String, f64>,
}

impl Baseline {
    /// An empty baseline capturing the current run's manifest.
    pub fn new(name: &str, manifest: &crate::RunManifest) -> Self {
        Baseline {
            schema: BASELINE_SCHEMA.to_string(),
            name: name.to_string(),
            manifest: manifest.fields(),
            metrics: BTreeMap::new(),
        }
    }

    /// Adds one metric (builder form).
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        self.metrics.insert(key.to_string(), value);
        self
    }

    /// Serializes to the baseline file format (pretty enough to diff in
    /// version control).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": ");
        write_json_string(&mut out, &self.schema);
        out.push_str(",\n  \"name\": ");
        write_json_string(&mut out, &self.name);
        out.push_str(",\n  \"manifest\": {");
        for (i, (k, v)) in self.manifest.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_json_string(&mut out, k);
            out.push_str(": ");
            write_json_string(&mut out, v);
        }
        out.push_str("\n  },\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_json_string(&mut out, k);
            out.push_str(": ");
            out.push_str(&fmt_f64(*v));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a baseline file; `Err` explains what is malformed.
    pub fn parse(text: &str) -> Result<Self, String> {
        let fields = parse_json_object(text.trim())
            .ok_or_else(|| "baseline file is not a JSON object".to_string())?;
        let mut baseline = Baseline {
            schema: String::new(),
            name: String::new(),
            manifest: Vec::new(),
            metrics: BTreeMap::new(),
        };
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("schema", JsonValue::Str(s)) => baseline.schema = s,
                ("name", JsonValue::Str(s)) => baseline.name = s,
                ("manifest", JsonValue::Obj(entries)) => {
                    for (k, v) in entries {
                        if let JsonValue::Str(s) = v {
                            baseline.manifest.push((k, s));
                        }
                    }
                }
                ("metrics", JsonValue::Obj(entries)) => {
                    for (k, v) in entries {
                        if let JsonValue::Num(n) = v {
                            baseline.metrics.insert(k, n);
                        }
                    }
                }
                _ => {}
            }
        }
        if baseline.schema.is_empty() {
            return Err("baseline file has no schema field".to_string());
        }
        if !baseline.schema.starts_with("snet-bench-baseline/") {
            return Err(format!("unrecognized baseline schema {:?}", baseline.schema));
        }
        if baseline.name.is_empty() {
            return Err("baseline file has no name field".to_string());
        }
        Ok(baseline)
    }

    /// Writes the baseline to `path`, creating parent directories.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a baseline file.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: a significant drop is a regression.
    HigherBetter,
    /// Latency-like: a significant rise is a regression.
    LowerBetter,
    /// Workload-size-like: reported, never a regression by itself.
    Neutral,
}

impl Direction {
    /// Infers the direction from the metric name: `*_ms`/`*_us`/`*_ns`
    /// are durations (lower is better), names mentioning `nodes` or
    /// `states` counts are workload descriptors (neutral), everything
    /// else — rates, hit ratios — is higher-better.
    pub fn of(metric: &str) -> Direction {
        if metric.ends_with("_ms") || metric.ends_with("_us") || metric.ends_with("_ns") {
            Direction::LowerBetter
        } else if metric.ends_with("_total") || metric == "nodes" || metric == "states" {
            Direction::Neutral
        } else {
            Direction::HigherBetter
        }
    }
}

/// One metric's comparison between two baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub metric: String,
    /// Value in the reference (old) baseline, if present.
    pub old: Option<f64>,
    /// Value in the candidate (new) baseline, if present.
    pub new: Option<f64>,
    /// Signed percent change new vs. old (`None` unless both present
    /// and old ≠ 0).
    pub pct: Option<f64>,
    /// True iff the change exceeds the threshold in the bad direction.
    pub regressed: bool,
}

/// The result of [`diff`]: per-metric deltas plus the regression count.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineDiff {
    /// Per-metric rows, sorted by metric name.
    pub deltas: Vec<MetricDelta>,
    /// Threshold used, in percent.
    pub fail_pct: f64,
}

impl BaselineDiff {
    /// Metrics that regressed beyond the threshold.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }
}

/// Compares `new` against the reference `old`. A metric regresses when
/// it moves more than `fail_pct` percent in its bad direction (see
/// [`Direction::of`]); metrics present on only one side are listed but
/// never regress.
pub fn diff(old: &Baseline, new: &Baseline, fail_pct: f64) -> BaselineDiff {
    let mut names: Vec<&String> = old.metrics.keys().chain(new.metrics.keys()).collect();
    names.sort();
    names.dedup();
    let deltas = names
        .into_iter()
        .map(|name| {
            let old_v = old.metrics.get(name).copied();
            let new_v = new.metrics.get(name).copied();
            let pct = match (old_v, new_v) {
                (Some(o), Some(n)) if o != 0.0 => Some((n - o) / o * 100.0),
                _ => None,
            };
            let regressed = match (Direction::of(name), pct) {
                (Direction::HigherBetter, Some(p)) => p < -fail_pct,
                (Direction::LowerBetter, Some(p)) => p > fail_pct,
                _ => false,
            };
            MetricDelta { metric: name.clone(), old: old_v, new: new_v, pct, regressed }
        })
        .collect();
    BaselineDiff { deltas, fail_pct }
}

/// Renders a diff as an aligned table with a verdict line.
pub fn render_diff(old: &Baseline, new: &Baseline, d: &BaselineDiff) -> String {
    let mut rows: Vec<[String; 4]> =
        vec![["metric".to_string(), "old".to_string(), "new".to_string(), "change".to_string()]];
    let fmt_opt = |v: Option<f64>| v.map(|v| fmt_f64((v * 1000.0).round() / 1000.0));
    for delta in &d.deltas {
        let change = match delta.pct {
            Some(p) => {
                let mark = if delta.regressed { "  REGRESSED" } else { "" };
                format!("{p:+.1}%{mark}")
            }
            None if delta.old.is_none() => "new metric".to_string(),
            None => "removed".to_string(),
        };
        rows.push([
            delta.metric.clone(),
            fmt_opt(delta.old).unwrap_or_else(|| "-".to_string()),
            fmt_opt(delta.new).unwrap_or_else(|| "-".to_string()),
            change,
        ]);
    }
    let mut widths = [0usize; 4];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = format!("baseline diff: {} (old) vs {} (new)\n", old.name, new.name);
    for (k, v) in &old.manifest {
        if k == "commit" || k == "threads" {
            let new_v = new.manifest.iter().find(|(nk, _)| nk == k).map(|(_, v)| v.as_str());
            if new_v.is_some_and(|nv| nv != v) {
                out.push_str(&format!("  note: {k} changed {v} -> {}\n", new_v.unwrap()));
            }
        }
    }
    for row in &rows {
        out.push_str(&format!(
            "  {:<w0$}  {:>w1$}  {:>w2$}  {}\n",
            row[0],
            row[1],
            row[2],
            row[3],
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
        ));
    }
    let regressions = d.regressions();
    if regressions.is_empty() {
        out.push_str(&format!("  OK: no metric regressed more than {}%\n", d.fail_pct));
    } else {
        out.push_str(&format!(
            "  FAIL: {} metric(s) regressed more than {}%\n",
            regressions.len(),
            d.fail_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, states_per_sec: f64, wall_ms: f64) -> Baseline {
        Baseline::new(name, &crate::RunManifest::capture("bench-test"))
            .metric("states_per_sec", states_per_sec)
            .metric("tt_hit_rate", 0.5)
            .metric("wall_ms", wall_ms)
            .metric("nodes_total", 1000.0)
    }

    #[test]
    fn json_roundtrips() {
        let b = sample("search_n6", 1.25e6, 420.5);
        let back = Baseline::parse(&b.to_json()).expect("parses back");
        assert_eq!(back, b);
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"schema\":\"wrong/1\",\"name\":\"x\"}").is_err());
    }

    #[test]
    fn directions_infer_from_names() {
        assert_eq!(Direction::of("states_per_sec"), Direction::HigherBetter);
        assert_eq!(Direction::of("tt_hit_rate"), Direction::HigherBetter);
        assert_eq!(Direction::of("wall_ms"), Direction::LowerBetter);
        assert_eq!(Direction::of("task_p99_us"), Direction::LowerBetter);
        assert_eq!(Direction::of("nodes_total"), Direction::Neutral);
    }

    #[test]
    fn clean_rerun_passes_and_injected_regression_fails() {
        let old = sample("search_n6", 1e6, 400.0);
        let same = sample("search_n6", 1.02e6, 395.0);
        assert!(diff(&old, &same, 10.0).regressions().is_empty());

        // Throughput drop beyond threshold.
        let slow = sample("search_n6", 0.5e6, 400.0);
        let d = diff(&old, &slow, 10.0);
        let regressions = d.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "states_per_sec");
        assert!(render_diff(&old, &slow, &d).contains("REGRESSED"));

        // Wall-time rise beyond threshold.
        let slow_wall = sample("search_n6", 1e6, 600.0);
        assert_eq!(diff(&old, &slow_wall, 10.0).regressions()[0].metric, "wall_ms");

        // Workload growth alone is not a regression.
        let mut bigger = sample("search_n6", 1e6, 400.0);
        bigger.metrics.insert("nodes_total".into(), 5000.0);
        assert!(diff(&old, &bigger, 10.0).regressions().is_empty());
    }

    #[test]
    fn one_sided_metrics_never_regress() {
        let old = sample("search_n6", 1e6, 400.0);
        let mut new = sample("search_n6", 1e6, 400.0);
        new.metrics.remove("wall_ms");
        new.metrics.insert("steal_ratio".into(), 0.1);
        let d = diff(&old, &new, 10.0);
        assert!(d.regressions().is_empty());
        let rendered = render_diff(&old, &new, &d);
        assert!(rendered.contains("new metric"));
        assert!(rendered.contains("removed"));
        assert!(rendered.contains("OK:"));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("snet-obs-tests").join("baselines");
        let path = dir.join("unit.json");
        let b = sample("unit", 2e6, 100.0);
        b.save(&path).expect("saves");
        let back = Baseline::load(&path).expect("loads");
        assert_eq!(back, b);
        assert!(Baseline::load(&dir.join("missing.json")).is_err());
    }
}
