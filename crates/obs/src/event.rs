//! The structured event model and its JSONL encoding.
//!
//! Every observation the runtime produces is one [`Event`]: a span
//! boundary, a counter increment, a gauge sample, or the run manifest.
//! Events serialize to one flat JSON object per line; the subset of JSON
//! emitted here (strings, unsigned/float numbers, and a single nested
//! string→string `attrs` object) is exactly what [`crate::report`] parses
//! back, so a trace file round-trips without any external dependency.

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was entered (`id`, `parent`, `t_us`).
    SpanStart,
    /// A span was exited (`dur_us` holds the wall duration; attrs are
    /// attached here so values computed during the span are captured).
    SpanEnd,
    /// A monotone counter increment (`value` holds the delta).
    Counter,
    /// A point-in-time sample (`value` holds the sample).
    Gauge,
    /// A histogram snapshot (`value` holds the sample count; the bucket
    /// encoding lives in the attrs — see
    /// [`crate::hist::HistSnapshot::to_attrs`]).
    Hist,
    /// The run manifest, emitted once at sink installation.
    Manifest,
}

impl EventKind {
    /// Stable wire name used in the JSONL `type` field.
    pub fn wire_name(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Hist => "hist",
            EventKind::Manifest => "manifest",
        }
    }

    /// Inverse of [`wire_name`](Self::wire_name).
    pub fn from_wire_name(s: &str) -> Option<Self> {
        Some(match s {
            "span_start" => EventKind::SpanStart,
            "span_end" => EventKind::SpanEnd,
            "counter" => EventKind::Counter,
            "gauge" => EventKind::Gauge,
            "hist" => EventKind::Hist,
            "manifest" => EventKind::Manifest,
            _ => return None,
        })
    }
}

/// One structured observation. See [`EventKind`] for field semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What this event records.
    pub kind: EventKind,
    /// Dotted event name, e.g. `check.zero_one` or `ir.pass`.
    pub name: String,
    /// Span id (allocation is global and starts at 1); 0 for non-span
    /// events.
    pub id: u64,
    /// Enclosing span id; 0 means root.
    pub parent: u64,
    /// Small per-process thread ordinal (not the OS thread id).
    pub thread: u64,
    /// Microseconds since the process-wide observation epoch.
    pub t_us: u64,
    /// Span wall duration in microseconds (`SpanEnd` only, else 0).
    pub dur_us: u64,
    /// Counter delta or gauge sample (else 0).
    pub value: f64,
    /// Free-form key/value annotations.
    pub attrs: Vec<(String, String)>,
}

impl Event {
    /// Encodes the event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"type\":\"");
        out.push_str(self.kind.wire_name());
        out.push_str("\",\"name\":");
        write_json_string(&mut out, &self.name);
        use std::fmt::Write as _;
        let _ = write!(
            out,
            ",\"id\":{},\"parent\":{},\"thread\":{},\"t_us\":{}",
            self.id, self.parent, self.thread, self.t_us
        );
        if self.dur_us != 0 {
            let _ = write!(out, ",\"dur_us\":{}", self.dur_us);
        }
        if self.value != 0.0 {
            let _ = write!(out, ",\"value\":{}", fmt_f64(self.value));
        }
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, k);
                out.push(':');
                write_json_string(&mut out, v);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Formats an `f64` so it parses back losslessly and never renders as
/// bare `NaN`/`inf` (invalid JSON): non-finite values clamp to 0.
pub(crate) fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_roundtrips_through_report_parser() {
        let ev = Event {
            kind: EventKind::SpanEnd,
            name: "check.zero_one".into(),
            id: 7,
            parent: 2,
            thread: 1,
            t_us: 1234,
            dur_us: 99,
            value: 0.0,
            attrs: vec![("wires".into(), "16".into()), ("note".into(), "a \"b\"\n".into())],
        };
        let line = ev.to_json_line();
        let back = crate::report::parse_event_line(&line).expect("parses");
        assert_eq!(back, ev);
    }

    #[test]
    fn wire_names_roundtrip() {
        for kind in [
            EventKind::SpanStart,
            EventKind::SpanEnd,
            EventKind::Counter,
            EventKind::Gauge,
            EventKind::Hist,
            EventKind::Manifest,
        ] {
            assert_eq!(EventKind::from_wire_name(kind.wire_name()), Some(kind));
        }
        assert_eq!(EventKind::from_wire_name("bogus"), None);
    }

    #[test]
    fn non_finite_values_stay_valid_json() {
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(2.5), "2.5");
    }
}
