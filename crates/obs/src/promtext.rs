//! Prometheus text exposition format (`text/plain; version=0.0.4`):
//! rendering for [`crate::registry`] families and a strict parser used
//! by `snetctl metrics FILE` and CI to validate scrapes offline.
//!
//! The renderer emits `# HELP`/`# TYPE` headers, escaped label values,
//! and cumulative `le` buckets for histograms. The parser re-checks all
//! of that — series name and label grammar, no duplicate series, bucket
//! monotonicity, `+Inf` termination — so a rendered exposition
//! round-trips and a malformed one is rejected with a line number.

use crate::event::fmt_f64;
use crate::hist::bucket_edge;
use crate::registry::{Family, Value};
use std::collections::{BTreeMap, BTreeSet};

/// The HTTP content type this format is served under.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
}

/// Renders families to the text exposition format. Families render in
/// the order given; [`crate::registry::gather`] supplies them sorted.
pub fn render(families: &[Family]) -> String {
    let mut out = String::new();
    for f in families {
        if !f.help.is_empty() {
            out.push_str("# HELP ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(&escape_help(&f.help));
            out.push('\n');
        }
        out.push_str("# TYPE ");
        out.push_str(&f.name);
        out.push(' ');
        out.push_str(f.kind.type_name());
        out.push('\n');
        for s in &f.samples {
            match &s.value {
                Value::Counter(v) | Value::Gauge(v) => {
                    out.push_str(&f.name);
                    render_labels(&mut out, &s.labels, None);
                    out.push(' ');
                    out.push_str(&fmt_f64(*v));
                    out.push('\n');
                }
                Value::Hist(h) => {
                    let mut cum = 0u64;
                    for (b, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        out.push_str(&f.name);
                        out.push_str("_bucket");
                        let le = bucket_edge(b).to_string();
                        render_labels(&mut out, &s.labels, Some(("le", &le)));
                        out.push(' ');
                        out.push_str(&cum.to_string());
                        out.push('\n');
                    }
                    out.push_str(&f.name);
                    out.push_str("_bucket");
                    render_labels(&mut out, &s.labels, Some(("le", "+Inf")));
                    out.push(' ');
                    out.push_str(&h.count.to_string());
                    out.push('\n');
                    out.push_str(&f.name);
                    out.push_str("_sum");
                    render_labels(&mut out, &s.labels, None);
                    out.push(' ');
                    out.push_str(&h.sum.to_string());
                    out.push('\n');
                    out.push_str(&f.name);
                    out.push_str("_count");
                    render_labels(&mut out, &s.labels, None);
                    out.push(' ');
                    out.push_str(&h.count.to_string());
                    out.push('\n');
                }
            }
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Full sample name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Labels in file order (the duplicate check canonicalizes).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A validated exposition: declared types plus every sample.
#[derive(Debug, Clone, Default)]
pub struct ParsedMetrics {
    /// `# TYPE` declarations, family name → type keyword.
    pub types: BTreeMap<String, String>,
    /// Every sample line in file order.
    pub series: Vec<Series>,
}

impl ParsedMetrics {
    /// The value of the series matching `name` and exactly `labels`
    /// (order-insensitive), if present.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        want.sort();
        self.series
            .iter()
            .find(|s| {
                if s.name != name {
                    return false;
                }
                let mut have = s.labels.clone();
                have.sort();
                have == want
            })
            .map(|s| s.value)
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

fn parse_sample_line(line: &str) -> Result<Series, String> {
    let (name_part, rest) = match line.find(['{', ' ']) {
        Some(i) => line.split_at(i),
        None => return Err("missing value".into()),
    };
    if !valid_metric_name(name_part) {
        return Err(format!("invalid metric name {name_part:?}"));
    }
    let mut labels = Vec::new();
    let rest = if let Some(body) = rest.strip_prefix('{') {
        // The closing brace cannot be found with a plain scan: a quoted
        // label value may itself contain `}` (e.g. a templated endpoint
        // like `/v1/jobs/{id}`), so walk the grammar instead.
        let mut chars = body.char_indices().peekable();
        let after_idx;
        loop {
            match chars.peek() {
                Some(&(i, '}')) => {
                    after_idx = i + 1;
                    break;
                }
                None => return Err("unterminated label set".into()),
                _ => {}
            }
            let mut key = String::new();
            loop {
                match chars.next() {
                    Some((_, '=')) => break,
                    Some((_, c)) => key.push(c),
                    None => return Err("unterminated label set".into()),
                }
            }
            if !valid_label_name(&key) {
                return Err(format!("invalid label name {key:?}"));
            }
            if !matches!(chars.next(), Some((_, '"'))) {
                return Err("label value not quoted".into());
            }
            let mut val = String::new();
            loop {
                match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '\\')) => val.push('\\'),
                        Some((_, '"')) => val.push('"'),
                        Some((_, 'n')) => val.push('\n'),
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|(_, c)| c)));
                        }
                    },
                    Some((_, '"')) => break,
                    Some((_, c)) => val.push(c),
                    None => return Err("unterminated label value".into()),
                }
            }
            labels.push((key, val));
            match chars.peek() {
                Some(&(_, ',')) => {
                    chars.next();
                }
                Some(&(_, '}')) | None => {}
                Some(&(_, c)) => {
                    return Err(format!("expected ',' between labels, got {c:?}"));
                }
            }
        }
        &body[after_idx..]
    } else {
        rest
    };
    let rest = rest.trim_start();
    let mut parts = rest.split_whitespace();
    let value_text = parts.next().ok_or("missing value")?;
    if parts.next().is_some() {
        return Err("trailing tokens after value (timestamps are not emitted here)".into());
    }
    let value = parse_value(value_text).ok_or_else(|| format!("bad value {value_text:?}"))?;
    Ok(Series { name: name_part.to_string(), labels, value })
}

/// Parses and validates a text exposition. Checks the sample grammar,
/// name/label character sets, duplicate series, `# TYPE` declarations
/// preceding their samples, and for histograms: `le` buckets strictly
/// ascending, cumulative counts non-decreasing, a terminating `+Inf`
/// bucket that agrees with `_count`, and a `_sum` line.
pub fn parse(text: &str) -> Result<ParsedMetrics, String> {
    let mut out = ParsedMetrics::default();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return Err(format!("line {n}: malformed TYPE line"));
                };
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: invalid metric name {name:?}"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {n}: unknown metric type {kind:?}"));
                }
                if out.types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {n}: duplicate TYPE for {name}"));
                }
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: invalid metric name in HELP"));
                }
            }
            // Other comment lines are legal and ignored.
            continue;
        }
        let series = parse_sample_line(line).map_err(|e| format!("line {n}: {e}"))?;
        let mut sig_labels = series.labels.clone();
        sig_labels.sort();
        let sig = format!(
            "{}\u{1}{}",
            series.name,
            sig_labels.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join("\u{1}")
        );
        if !seen.insert(sig) {
            return Err(format!("line {n}: duplicate series {}", series.name));
        }
        // A sample must follow its family's TYPE declaration.
        let family = histogram_family(&out.types, &series.name);
        if family.is_none() && !out.types.contains_key(&series.name) {
            return Err(format!("line {n}: sample {} precedes its TYPE line", series.name));
        }
        out.series.push(series);
    }
    validate_histograms(&out)?;
    Ok(out)
}

/// Parses a text exposition leniently, skipping malformed lines instead
/// of failing. Returns the metrics and how many lines were dropped.
///
/// This is how a live dump is read while it is being rewritten (e.g.
/// `snetctl metrics FILE --watch` pointed at a daemon's `--metrics-out`
/// target): a file caught mid-write can hold a torn tail line, which is
/// damage worth tolerating for one refresh, not a reason to blank the
/// screen. Skipped lines are: unparseable samples, malformed `# TYPE`
/// declarations, duplicate series, samples preceding their type, and —
/// because a truncated histogram fails its cumulative invariants — every
/// series of a histogram family that no longer validates.
pub fn parse_lossy(text: &str) -> (ParsedMetrics, usize) {
    let mut out = ParsedMetrics::default();
    let mut skipped = 0usize;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for raw in text.lines() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some(name), Some(kind))
                        if valid_metric_name(name)
                            && matches!(
                                kind,
                                "counter" | "gauge" | "histogram" | "summary" | "untyped"
                            )
                            && !out.types.contains_key(name) =>
                    {
                        out.types.insert(name.to_string(), kind.to_string());
                    }
                    _ => skipped += 1,
                }
            }
            // HELP and other comments carry no state worth counting.
            continue;
        }
        let series = match parse_sample_line(line) {
            Ok(s) => s,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        let mut sig_labels = series.labels.clone();
        sig_labels.sort();
        let sig = format!(
            "{}\u{1}{}",
            series.name,
            sig_labels.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join("\u{1}")
        );
        if !seen.insert(sig) {
            skipped += 1;
            continue;
        }
        if histogram_family(&out.types, &series.name).is_none()
            && !out.types.contains_key(&series.name)
        {
            skipped += 1;
            continue;
        }
        out.series.push(series);
    }
    // A histogram truncated mid-family (buckets written, `_count` or
    // `_sum` lost in the torn tail) fails its cumulative invariants;
    // drop the whole family rather than hand back half a histogram.
    let torn: Vec<String> = out
        .types
        .iter()
        .filter(|(_, kind)| kind.as_str() == "histogram")
        .filter(|(family, _)| validate_histogram_family(&out, family).is_err())
        .map(|(family, _)| family.clone())
        .collect();
    for family in torn {
        let before = out.series.len();
        out.series.retain(|s| {
            !["_bucket", "_sum", "_count"]
                .iter()
                .any(|suffix| s.name == format!("{family}{suffix}"))
        });
        skipped += before - out.series.len();
        out.types.remove(&family);
    }
    (out, skipped)
}

/// The histogram family a suffixed sample belongs to, if any.
fn histogram_family(types: &BTreeMap<String, String>, sample: &str) -> Option<String> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base.to_string());
            }
        }
    }
    None
}

fn validate_histograms(parsed: &ParsedMetrics) -> Result<(), String> {
    for (family, kind) in &parsed.types {
        if kind != "histogram" {
            continue;
        }
        validate_histogram_family(parsed, family)?;
    }
    Ok(())
}

fn validate_histogram_family(parsed: &ParsedMetrics, family: &str) -> Result<(), String> {
    // Group buckets by the non-le label signature.
    let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut sums: BTreeMap<String, f64> = BTreeMap::new();
    let sig_of = |labels: &[(String, String)]| {
        let mut parts: Vec<String> =
            labels.iter().filter(|(k, _)| k != "le").map(|(k, v)| format!("{k}={v}")).collect();
        parts.sort();
        parts.join("\u{1}")
    };
    for s in &parsed.series {
        if s.name == format!("{family}_bucket") {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("{family}: bucket without le label"))?;
            let bound =
                parse_value(&le.1).ok_or_else(|| format!("{family}: bad le bound {:?}", le.1))?;
            groups.entry(sig_of(&s.labels)).or_default().push((bound, s.value));
        } else if s.name == format!("{family}_count") {
            counts.insert(sig_of(&s.labels), s.value);
        } else if s.name == format!("{family}_sum") {
            sums.insert(sig_of(&s.labels), s.value);
        }
    }
    for (sig, buckets) in &groups {
        for pair in buckets.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(format!("{family}: le bounds not ascending"));
            }
            if pair[1].1 < pair[0].1 {
                return Err(format!("{family}: bucket counts not cumulative"));
            }
        }
        let last = buckets.last().expect("grouped buckets are non-empty");
        if last.0 != f64::INFINITY {
            return Err(format!("{family}: missing +Inf bucket"));
        }
        let count = counts.get(sig).ok_or_else(|| format!("{family}: missing _count series"))?;
        if *count != last.1 {
            return Err(format!("{family}: _count disagrees with +Inf bucket"));
        }
        if !sums.contains_key(sig) {
            return Err(format!("{family}: missing _sum series"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::registry::{MetricKind, Sample};

    fn fam(name: &str, kind: MetricKind, samples: Vec<Sample>) -> Family {
        Family { name: name.into(), help: format!("help for {name}"), kind, samples }
    }

    #[test]
    fn renders_and_parses_counters_gauges_histograms() {
        let h = Histogram::new();
        for v in [1u64, 3, 3, 900] {
            h.record(v);
        }
        let fams = vec![
            fam(
                "snet_store_hits_total",
                MetricKind::Counter,
                vec![Sample { labels: vec![], value: Value::Counter(12.0) }],
            ),
            fam(
                "snet_work_progress",
                MetricKind::Gauge,
                vec![Sample { labels: vec![], value: Value::Gauge(0.5) }],
            ),
            fam(
                "snet_task_us",
                MetricKind::Histogram,
                vec![Sample {
                    labels: vec![("pass".into(), "canon".into())],
                    value: Value::Hist(h.snapshot()),
                }],
            ),
        ];
        let text = render(&fams);
        assert!(text.contains("# TYPE snet_store_hits_total counter"));
        assert!(text.contains("snet_task_us_bucket{pass=\"canon\",le=\"+Inf\"} 4"));
        let parsed = parse(&text).expect("rendered exposition validates");
        assert_eq!(parsed.value("snet_store_hits_total", &[]), Some(12.0));
        assert_eq!(parsed.value("snet_work_progress", &[]), Some(0.5));
        assert_eq!(parsed.value("snet_task_us_count", &[("pass", "canon")]), Some(4.0));
        assert_eq!(parsed.value("snet_task_us_sum", &[("pass", "canon")]), Some(907.0));
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let fams = vec![fam(
            "snet_g",
            MetricKind::Gauge,
            vec![Sample {
                labels: vec![("path".into(), "a\\b\"c\nd".into())],
                value: Value::Gauge(1.0),
            }],
        )];
        let text = render(&fams);
        let parsed = parse(&text).expect("escaped labels validate");
        assert_eq!(parsed.series[0].labels[0].1, "a\\b\"c\nd");
    }

    #[test]
    fn label_values_may_contain_braces_commas_and_equals() {
        let text = "# TYPE snet_http_request_duration histogram\n\
                    snet_http_request_duration_bucket{endpoint=\"/v1/jobs/{id}\",le=\"+Inf\"} 2\n\
                    snet_http_request_duration_sum{endpoint=\"/v1/jobs/{id}\"} 7\n\
                    snet_http_request_duration_count{endpoint=\"/v1/jobs/{id}\"} 2\n\
                    # TYPE snet_g gauge\n\
                    snet_g{k=\"a,b=c}d\"} 1\n";
        let parsed = parse(text).expect("braces inside quoted label values are legal");
        assert_eq!(
            parsed.value("snet_http_request_duration_count", &[("endpoint", "/v1/jobs/{id}")]),
            Some(2.0)
        );
        assert_eq!(parsed.value("snet_g", &[("k", "a,b=c}d")]), Some(1.0));
        assert!(parse("snet_g{k=\"open 1\n").is_err(), "a missing close brace still fails");
    }

    #[test]
    fn rejects_duplicates_and_broken_histograms() {
        assert!(parse("# TYPE x gauge\nx 1\nx 2\n").is_err());
        assert!(parse("x 1\n").is_err(), "sample without TYPE rejected");
        assert!(parse("# TYPE 9bad gauge\n").is_err());
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 3\nh_count 2\n";
        assert!(parse(no_inf).unwrap_err().contains("+Inf"));
        let non_cum = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                       h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(parse(non_cum).unwrap_err().contains("cumulative"));
        let bad_order = "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\n\
                         h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n";
        assert!(parse(bad_order).unwrap_err().contains("ascending"));
    }

    #[test]
    fn lossy_parse_matches_strict_on_clean_input_and_tolerates_a_torn_tail() {
        let fams = vec![
            fam(
                "snet_store_hits_total",
                MetricKind::Counter,
                vec![Sample { labels: vec![], value: Value::Counter(12.0) }],
            ),
            fam(
                "snet_work_progress",
                MetricKind::Gauge,
                vec![Sample { labels: vec![], value: Value::Gauge(0.5) }],
            ),
        ];
        let text = render(&fams);
        let (clean, skipped) = parse_lossy(&text);
        assert_eq!(skipped, 0, "a well-formed dump skips nothing");
        assert_eq!(clean.series.len(), parse(&text).unwrap().series.len());

        // Tear the final sample line mid-value, as a reader racing the
        // writer sees it.
        let torn = &text[..text.len() - 4];
        assert!(parse(torn).is_err(), "the strict parser refuses a torn dump");
        let (parsed, skipped) = parse_lossy(torn);
        assert_eq!(skipped, 1, "exactly the torn line is dropped");
        assert_eq!(parsed.value("snet_store_hits_total", &[]), Some(12.0));
        assert_eq!(parsed.value("snet_work_progress", &[]), None);
    }

    #[test]
    fn lossy_parse_drops_a_truncated_histogram_family_wholesale() {
        let h = Histogram::new();
        for v in [1u64, 5, 9] {
            h.record(v);
        }
        let fams = vec![
            fam(
                "snet_store_hits_total",
                MetricKind::Counter,
                vec![Sample { labels: vec![], value: Value::Counter(3.0) }],
            ),
            fam(
                "snet_task_us",
                MetricKind::Histogram,
                vec![Sample { labels: vec![], value: Value::Hist(h.snapshot()) }],
            ),
        ];
        let text = render(&fams);
        // Cut just before `_sum`: every bucket line is intact, but the
        // family's cumulative invariants are unverifiable — half a
        // histogram must not be handed back as valid.
        let cut = text.find("snet_task_us_sum").expect("histogram renders a _sum line");
        let torn = &text[..cut];
        assert!(parse(torn).is_err());
        let (parsed, skipped) = parse_lossy(torn);
        assert!(skipped > 0, "the dropped bucket lines are counted");
        assert_eq!(parsed.value("snet_store_hits_total", &[]), Some(3.0));
        assert!(parsed.series.iter().all(|s| !s.name.starts_with("snet_task_us")));
        assert!(!parsed.types.contains_key("snet_task_us"));
    }
}
