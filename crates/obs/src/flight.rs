//! The flight recorder: an always-on, bounded-cost record of the most
//! recent events, dumped when the process dies.
//!
//! Each thread owns a fixed-size byte ring; an event is serialized to
//! its JSONL line once and appended to the owning thread's ring,
//! overwriting the oldest bytes when full. Writers never lock and never
//! touch another thread's ring, so recording costs one serialization
//! plus a byte copy — cheap enough to leave on for a week-long search.
//! Rings register in a global list (and outlive their threads via
//! `Arc`), so a dump sees every thread that ever recorded.
//!
//! A dump ([`dump_flight`], also wired into the panic hook) writes
//! `flight-<pid>.jsonl` in the current directory: each ring's surviving
//! window, oldest first, with the leading torn line after a wrap
//! skipped. The trailing line of a ring whose thread was mid-write can
//! still be torn — `snetctl report` parses dumps lossily for exactly
//! that reason.
//!
//! This module also hosts the crash-injection hook
//! (`SNET_FAULT_PANIC_AFTER`): CI arms it to panic a real search after a
//! known number of events, then asserts the dump renders.

use crate::event::Event;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

static FLIGHT_ON: AtomicBool = AtomicBool::new(false);
static RING_BYTES: AtomicUsize = AtomicUsize::new(DEFAULT_RING_BYTES);
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static FAULT_AFTER: AtomicU64 = AtomicU64::new(0);
static FAULT_COUNT: AtomicU64 = AtomicU64::new(0);

/// Default per-thread ring capacity: 512 KiB holds roughly the last
/// 4–5k events per thread at typical line lengths.
pub const DEFAULT_RING_BYTES: usize = 512 * 1024;

/// One thread's byte ring. Only the owning thread writes; any thread
/// may snapshot. `head` counts total bytes ever written (monotone) and
/// is published with `Release` so a reader's `Acquire` load sees the
/// bytes behind it.
struct Ring {
    thread: u64,
    buf: Box<[AtomicU8]>,
    head: AtomicUsize,
}

impl Ring {
    fn new(thread: u64, bytes: usize) -> Self {
        let mut v = Vec::with_capacity(bytes);
        v.resize_with(bytes, || AtomicU8::new(0));
        Ring { thread, buf: v.into_boxed_slice(), head: AtomicUsize::new(0) }
    }

    fn write(&self, mut bytes: &[u8]) {
        let len = self.buf.len();
        if len == 0 {
            return;
        }
        if bytes.len() > len {
            // A single over-long line keeps only its tail; the torn head
            // is dropped at read time like any other partial line.
            bytes = &bytes[bytes.len() - len..];
        }
        let head = self.head.load(Ordering::Relaxed);
        for (i, &b) in bytes.iter().enumerate() {
            self.buf[(head + i) % len].store(b, Ordering::Relaxed);
        }
        self.head.store(head + bytes.len(), Ordering::Release);
    }

    /// The surviving window, oldest byte first, with the leading torn
    /// line after a wrap skipped. Concurrent writes can tear the tail
    /// (and, mid-overwrite, the body); consumers parse lossily.
    fn contents(&self) -> Vec<u8> {
        let head = self.head.load(Ordering::Acquire);
        let len = self.buf.len();
        if len == 0 || head == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(head.min(len));
        if head <= len {
            for slot in &self.buf[..head] {
                out.push(slot.load(Ordering::Relaxed));
            }
            return out;
        }
        let start = head % len;
        for i in 0..len {
            out.push(self.buf[(start + i) % len].load(Ordering::Relaxed));
        }
        // The oldest line was overwritten mid-line by the wrap: skip to
        // the first line boundary.
        match out.iter().position(|&b| b == b'\n') {
            Some(nl) => out.split_off(nl + 1),
            None => Vec::new(),
        }
    }
}

thread_local! {
    static RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

/// True iff the flight recorder is capturing events.
#[inline]
pub(crate) fn is_on() -> bool {
    FLIGHT_ON.load(Ordering::Relaxed)
}

pub(crate) fn set_on(on: bool) {
    FLIGHT_ON.store(on, Ordering::Relaxed);
}

/// Sets the per-thread ring capacity for rings created after this call.
pub(crate) fn set_ring_bytes(bytes: usize) {
    RING_BYTES.store(bytes.max(1024), Ordering::Relaxed);
}

/// Serializes `e` and appends it to the calling thread's ring.
pub(crate) fn record(e: &Event) {
    let mut line = e.to_json_line();
    line.push('\n');
    let _ = RING.try_with(|cell| {
        let ring = cell.get_or_init(|| {
            let r =
                Arc::new(Ring::new(crate::thread_ordinal(), RING_BYTES.load(Ordering::Relaxed)));
            RINGS.lock().unwrap_or_else(|p| p.into_inner()).push(r.clone());
            r
        });
        ring.write(line.as_bytes());
    });
}

/// Every ring's surviving window as text, ordered by thread ordinal.
/// Test/report-facing; the panic path uses [`dump_flight`].
pub fn flight_snapshot() -> Vec<(u64, String)> {
    let mut rings = RINGS.lock().unwrap_or_else(|p| p.into_inner());
    rings.sort_by_key(|r| r.thread);
    rings.iter().map(|r| (r.thread, String::from_utf8_lossy(&r.contents()).into_owned())).collect()
}

/// Writes every ring's surviving window to `flight-<pid>.jsonl` in the
/// current directory and returns the path. `None` when the recorder
/// never captured anything (clean disabled runs leave no files behind).
pub fn dump_flight() -> Option<PathBuf> {
    let snapshot = flight_snapshot();
    if snapshot.iter().all(|(_, text)| text.is_empty()) {
        return None;
    }
    let path = PathBuf::from(format!("flight-{}.jsonl", std::process::id()));
    let mut out = String::new();
    for (_, text) in &snapshot {
        out.push_str(text);
        if !out.ends_with('\n') {
            out.push('\n');
        }
    }
    std::fs::write(&path, out).ok()?;
    Some(path)
}

/// Arms the crash-injection hook: the `n`-th event emitted after this
/// call panics. 0 disarms. Driven by `SNET_FAULT_PANIC_AFTER` in
/// `snetctl` so CI can kill a real run at a known point and assert the
/// flight dump survives.
pub fn arm_fault_after(n: u64) {
    FAULT_COUNT.store(0, Ordering::Relaxed);
    FAULT_AFTER.store(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn fault_tick() {
    let n = FAULT_AFTER.load(Ordering::Relaxed);
    if n != 0 && FAULT_COUNT.fetch_add(1, Ordering::Relaxed) + 1 == n {
        FAULT_AFTER.store(0, Ordering::Relaxed);
        panic!("injected fault: event #{n} reached (SNET_FAULT_PANIC_AFTER)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(name: &str, value: f64) -> Event {
        Event {
            kind: EventKind::Counter,
            name: name.into(),
            id: 0,
            parent: 0,
            thread: 0,
            t_us: 1,
            dur_us: 0,
            value,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn ring_drops_oldest_on_wrap_and_keeps_whole_lines() {
        let ring = Ring::new(0, 64);
        for i in 0..40 {
            ring.write(format!("line-{i:04}\n").as_bytes());
        }
        let text = String::from_utf8(ring.contents()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        // Every surviving line is intact and they are the newest ones.
        for l in &lines {
            assert!(l.starts_with("line-"), "torn line survived: {l:?}");
        }
        assert_eq!(*lines.last().unwrap(), "line-0039");
    }

    #[test]
    fn unwrapped_ring_returns_everything() {
        let ring = Ring::new(0, 1024);
        ring.write(b"a\n");
        ring.write(b"b\n");
        assert_eq!(ring.contents(), b"a\nb\n");
    }

    #[test]
    fn oversized_write_keeps_the_tail() {
        let ring = Ring::new(0, 8);
        ring.write(b"0123456789abcdef\n");
        let got = ring.contents();
        assert!(got.len() <= 8);
        assert!(got.ends_with(b"\n"));
    }

    #[test]
    fn recorded_events_parse_back_from_the_snapshot() {
        let _guard = crate::TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_on(true);
        record(&ev("flight.test.counter", 7.0));
        set_on(false);
        let me = crate::thread_ordinal();
        let snap = flight_snapshot();
        let (_, text) = snap.iter().find(|(t, _)| *t == me).expect("own ring registered");
        let line = text.lines().rfind(|l| l.contains("flight.test.counter")).unwrap();
        let back = crate::report::parse_event_line(line).expect("ring line parses");
        assert_eq!(back.value, 7.0);
    }
}
