//! Property tests for the Prometheus text exposition: whatever the
//! renderer produces must validate and parse back to the same values —
//! name mapping, label escaping, no duplicate series, cumulative
//! ascending histogram buckets.
//!
//! Like `report_fuzz.rs`, proptest supplies only a seed and a local LCG
//! generates the families, which keeps shrunk counterexamples small with
//! the vendored proptest stand-in.

use proptest::prelude::*;
use snet_obs::hist::Histogram;
use snet_obs::promtext;
use snet_obs::registry::{Family, MetricKind, Sample, Value};

/// Deterministic pseudo-random stream (64-bit LCG, Knuth constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn gen_name(rng: &mut Lcg, tag: u64) -> String {
    let stems = ["store_hits", "search_nodes", "balancer_visits", "task_us", "x9"];
    format!("snet_{}_{tag}", stems[rng.below(stems.len() as u64) as usize])
}

/// Label values deliberately cover the characters the escaper must
/// handle: backslash, double quote, newline, plus plain text.
fn gen_label_value(rng: &mut Lcg) -> String {
    let pieces = ["plain", "a\\b", "q\"uote", "line\nbreak", "", "trailing\\", "caf\u{e9}"];
    let mut out = String::new();
    for _ in 0..=rng.below(2) {
        out.push_str(pieces[rng.below(pieces.len() as u64) as usize]);
    }
    out
}

fn gen_labels(rng: &mut Lcg) -> Vec<(String, String)> {
    let n = rng.below(3);
    (0..n).map(|i| (format!("l{i}"), gen_label_value(rng))).collect()
}

fn gen_scalar_value(rng: &mut Lcg) -> f64 {
    match rng.below(4) {
        0 => 0.0,
        1 => rng.below(1_000_000) as f64,
        2 => rng.below(1_000) as f64 / 8.0,
        _ => -(rng.below(1_000_000) as f64),
    }
}

fn gen_family(rng: &mut Lcg, tag: u64) -> Family {
    let labels = gen_labels(rng);
    match rng.below(3) {
        0 => Family {
            name: format!("{}_total", gen_name(rng, tag)),
            help: "counts things \\ with\nescapes".into(),
            kind: MetricKind::Counter,
            samples: vec![Sample { labels, value: Value::Counter(gen_scalar_value(rng).abs()) }],
        },
        1 => Family {
            name: gen_name(rng, tag),
            help: String::new(),
            kind: MetricKind::Gauge,
            samples: vec![Sample { labels, value: Value::Gauge(gen_scalar_value(rng)) }],
        },
        _ => {
            let h = Histogram::new();
            for _ in 0..1 + rng.below(40) {
                h.record(rng.below(1_000_000));
            }
            Family {
                name: gen_name(rng, tag),
                help: "a histogram".into(),
                kind: MetricKind::Histogram,
                samples: vec![Sample { labels, value: Value::Hist(h.snapshot()) }],
            }
        }
    }
}

fn scalar_value(f: &Family) -> Option<f64> {
    match f.samples[0].value {
        Value::Counter(v) | Value::Gauge(v) => Some(v),
        Value::Hist(_) => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Everything the renderer emits validates and parses back to the
    /// same series values — through name suffixing, label escaping, and
    /// histogram bucket expansion.
    #[test]
    fn rendered_exposition_roundtrips(seed in 0u64..100_000) {
        let mut rng = Lcg(seed.wrapping_mul(2) + 1);
        // Distinct tags make family names unique, as the registry's
        // BTreeMap keying guarantees in production.
        let fams: Vec<Family> =
            (0..1 + rng.below(6)).map(|tag| gen_family(&mut rng, tag)).collect();
        let text = promtext::render(&fams);
        let parsed = match promtext::parse(&text) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("rendered text rejected: {e}\n{text}"))),
        };
        for f in &fams {
            let labels: Vec<(&str, &str)> =
                f.samples[0].labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            match scalar_value(f) {
                Some(want) => {
                    let got = parsed.value(&f.name, &labels);
                    prop_assert_eq!(got, Some(want), "series {} lost its value", &f.name);
                }
                None => {
                    let Value::Hist(h) = &f.samples[0].value else { unreachable!() };
                    prop_assert_eq!(
                        parsed.value(&format!("{}_count", f.name), &labels),
                        Some(h.count as f64)
                    );
                    prop_assert_eq!(
                        parsed.value(&format!("{}_sum", f.name), &labels),
                        Some(h.sum as f64)
                    );
                    let mut le = labels.clone();
                    le.push(("le", "+Inf"));
                    prop_assert_eq!(
                        parsed.value(&format!("{}_bucket", f.name), &le),
                        Some(h.count as f64)
                    );
                }
            }
        }
    }

    /// Rendering the same family twice produces duplicate series, which
    /// the validator must reject.
    #[test]
    fn duplicate_series_are_rejected(seed in 0u64..100_000) {
        let mut rng = Lcg(seed ^ 0x9e3779b97f4a7c15);
        let f = gen_family(&mut rng, 0);
        let text = promtext::render(&[f.clone(), f]);
        prop_assert!(promtext::parse(&text).is_err());
    }
}
