//! Property tests for report span-forest reconstruction: random span
//! forests, truncated traces, and adversarially shuffled cross-thread
//! line orders must all reconstruct to the same tree shape.
//!
//! Events are generated directly (not through the live emit API) so each
//! case controls ids, threads, and interleavings exactly. The generator
//! is a seeded LCG: proptest supplies only the seed, which keeps the
//! shrunk counterexamples small and reproducible.

use proptest::prelude::*;
use snet_obs::report::{self, SpanNode};
use snet_obs::{Event, EventKind};
use std::collections::BTreeMap;

/// Deterministic pseudo-random stream (64-bit LCG, Knuth constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[derive(Debug, Clone)]
struct GenSpan {
    id: u64,
    parent: u64, // 0 = root
    thread: u64,
    start_us: u64,
    dur_us: u64,
    ended: bool,
}

/// Generates a random forest honouring the emitter's invariants: ids are
/// globally increasing, a child's id and start time come after its
/// parent's, and a parent never ends before its children (spans are
/// RAII guards). A span may be truncated (started, never ended).
fn gen_forest(seed: u64) -> Vec<GenSpan> {
    let mut rng = Lcg(seed.wrapping_mul(2) + 1);
    let n = 1 + rng.below(24);
    let mut spans: Vec<GenSpan> = Vec::new();
    for id in 1..=n {
        let parent = if spans.is_empty() || rng.below(4) == 0 {
            0
        } else {
            spans[rng.below(spans.len() as u64) as usize].id
        };
        let parent_start = spans.iter().find(|s| s.id == parent).map(|s| s.start_us).unwrap_or(0);
        spans.push(GenSpan {
            id,
            parent,
            thread: rng.below(4),
            start_us: parent_start + 1 + rng.below(50),
            dur_us: rng.below(1000),
            ended: rng.below(8) != 0,
        });
    }
    // Truncation is independent per span on purpose: per-thread buffers
    // mean a crash can lose a parent's end event while a child's (from
    // another thread) survives, which is exactly the orphan-promotion
    // case the reconstructor must handle.
    spans
}

fn to_events(spans: &[GenSpan]) -> Vec<Event> {
    let mut events = Vec::new();
    for s in spans {
        events.push(Event {
            kind: EventKind::SpanStart,
            name: format!("span{}", s.id),
            id: s.id,
            parent: s.parent,
            thread: s.thread,
            t_us: s.start_us,
            dur_us: 0,
            value: 0.0,
            attrs: Vec::new(),
        });
        if s.ended {
            events.push(Event {
                kind: EventKind::SpanEnd,
                name: format!("span{}", s.id),
                id: s.id,
                parent: s.parent,
                thread: s.thread,
                t_us: s.start_us + s.dur_us,
                dur_us: s.dur_us,
                value: 0.0,
                attrs: vec![("k".into(), format!("v{}", s.id))],
            });
        }
    }
    events
}

fn shuffle<T>(items: &mut [T], rng: &mut Lcg) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.below(i as u64 + 1) as usize);
    }
}

/// Flattens a forest into `id → parent-id` (0 for roots), asserting each
/// id appears exactly once.
fn parent_map(roots: &[SpanNode]) -> BTreeMap<u64, u64> {
    fn walk(nodes: &[SpanNode], parent: u64, out: &mut BTreeMap<u64, u64>) {
        for n in nodes {
            assert!(out.insert(n.id, parent).is_none(), "span id {} duplicated", n.id);
            walk(&n.children, n.id, out);
        }
    }
    let mut out = BTreeMap::new();
    walk(roots, 0, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any line order of the same event set reconstructs the same
    /// forest, every ended span lands under its parent (or is promoted
    /// to root when the parent never ended), and the rendering mentions
    /// every surviving span.
    #[test]
    fn forest_reconstruction_is_order_independent(seed in 0u64..100_000) {
        let spans = gen_forest(seed);
        let events = to_events(&spans);

        // Reference shape: events in emission order.
        let reference = report::summarize(events.clone());
        let reference_parents = parent_map(&reference.roots);

        // Every ended span appears; its parent is the nearest *ended*
        // ancestor-or-root per the promotion rule.
        let by_id: BTreeMap<u64, &GenSpan> = spans.iter().map(|s| (s.id, s)).collect();
        for s in spans.iter().filter(|s| s.ended) {
            let expected_parent =
                if by_id.get(&s.parent).is_some_and(|p| p.ended) { s.parent } else { 0 };
            prop_assert_eq!(
                reference_parents.get(&s.id).copied(),
                Some(expected_parent),
                "span {} misplaced", s.id
            );
        }
        prop_assert_eq!(reference_parents.len(), spans.iter().filter(|s| s.ended).count());

        let rendered = report::render(&reference);
        for s in spans.iter().filter(|s| s.ended) {
            prop_assert!(rendered.contains(&format!("span{}", s.id)));
        }

        // Adversarial interleavings: shuffled whole-trace order, and a
        // "per-thread drain" order (each thread's events stay in order,
        // threads interleave randomly) — both must match the reference.
        let mut rng = Lcg(seed ^ 0x9e3779b97f4a7c15);
        for _ in 0..4 {
            let mut shuffled = events.clone();
            shuffle(&mut shuffled, &mut rng);
            let report = report::summarize(shuffled);
            prop_assert_eq!(parent_map(&report.roots), reference_parents.clone());
            prop_assert_eq!(&report.roots, &reference.roots);
        }
    }

    /// The JSONL encoding is transparent: serializing shuffled events to
    /// lines and re-parsing yields the identical report.
    #[test]
    fn jsonl_roundtrip_preserves_the_forest(seed in 0u64..100_000) {
        let spans = gen_forest(seed);
        let mut events = to_events(&spans);
        let mut rng = Lcg(seed ^ 0xdeadbeef);
        shuffle(&mut events, &mut rng);
        let text: String =
            events.iter().map(|e| e.to_json_line() + "\n").collect();
        let parsed = report::parse_trace(&text).expect("trace parses");
        let direct = report::summarize(events);
        prop_assert_eq!(parsed, direct);
    }
}
