//! Flight-recorder concurrency: 8 threads hammering the emit path must
//! never interleave partial lines — each thread owns its ring, so every
//! surviving line is intact and attributable.

use snet_obs::report::parse_event_line;

#[test]
fn eight_concurrent_writers_never_interleave_partial_lines() {
    const THREADS: u64 = 8;
    const EVENTS_PER_THREAD: usize = 500;

    snet_obs::enable_flight(None);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for _ in 0..EVENTS_PER_THREAD {
                    // The value encodes the writer; a torn or interleaved
                    // line would fail to parse or miscount below.
                    snet_obs::counter("flight.writer", t + 1);
                }
            });
        }
    });
    snet_obs::disable_flight();

    let mut per_writer = vec![0usize; THREADS as usize + 1];
    for (_, text) in snet_obs::flight_snapshot() {
        for line in text.lines() {
            let ev = parse_event_line(line)
                .unwrap_or_else(|| panic!("partial or torn line in quiescent ring: {line:?}"));
            if ev.name == "flight.writer" {
                let writer = ev.value as usize;
                assert!(
                    (1..=THREADS as usize).contains(&writer),
                    "interleaved bytes produced a bogus writer id in {line:?}"
                );
                per_writer[writer] += 1;
            }
        }
    }
    for (writer, &count) in per_writer.iter().enumerate().skip(1) {
        assert_eq!(
            count, EVENTS_PER_THREAD,
            "writer {writer}: ring dropped or corrupted events while under capacity"
        );
    }
}
