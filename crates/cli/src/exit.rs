//! `snetctl`'s exit-code contract, in one place.
//!
//! Every nonzero exit a subcommand can produce is named here; scripts
//! and CI jobs branch on these values, so they are part of the tool's
//! stable interface (the same table is documented in the repository
//! README). Exits taken through [`exit_flushed`] drain buffered
//! observability output first — `std::process::exit` skips `main`'s
//! normal flush.

/// Generic failure: bad arguments, unreadable files, internal errors.
pub const GENERIC: i32 = 1;
/// `check` found a counterexample — the network does not sort.
pub const CHECK_COUNTEREXAMPLE: i32 = 3;
/// `refute`/`certify`: the adversary exhausted its `[M_0]`-set
/// (`|D| < 2`) and has no witness; the network may well sort.
pub const ADVERSARY_EXHAUSTED: i32 = 4;
/// `closure`: the symbol closure never completes — no sorting network
/// based on the requested permutation exists at any depth.
pub const CLOSURE_IMPOSSIBLE: i32 = 5;
/// `audit`: the proof bundle failed an independent check.
pub const CERTIFICATE_REJECTED: i32 = 6;
/// `search`: every depth budget up to the ceiling was refuted.
pub const SEARCH_REFUTED: i32 = 7;
/// `bench diff`: a metric regressed beyond the allowed percentage.
pub const BENCH_REGRESS: i32 = 8;
/// `count`: the live runtime or the interleaving explorer observed a
/// step-property violation.
pub const STEP_VIOLATION: i32 = 9;
/// `store get`: the requested entry exists but is corrupt (it has been
/// quarantined; verdict paths treat the same condition as a cache miss
/// and recompute instead of exiting).
pub const STORE_CORRUPT: i32 = 10;
/// `serve` (and the `snet-snetd` binary): the daemon could not start —
/// bind failure, bad flags, unopenable store — or the accept loop died.
pub const DAEMON_FAILED: i32 = 11;

/// Where `--metrics-out FILE` asked for the final registry exposition;
/// armed once during observability setup.
static METRICS_OUT: std::sync::OnceLock<String> = std::sync::OnceLock::new();

/// Arms the end-of-process metrics dump (`--metrics-out FILE`).
pub fn arm_metrics_out(path: String) {
    let _ = METRICS_OUT.set(path);
}

/// Writes the Prometheus exposition of this process's registry to the
/// armed path, if any. Runs on every exit path (normal return and
/// [`exit_flushed`]) so the dump reflects the whole run.
pub fn write_metrics_out() {
    if let Some(path) = METRICS_OUT.get() {
        if let Err(e) = std::fs::write(path, snet_obs::registry::render_prometheus()) {
            eprintln!("snetctl: cannot write metrics to {path}: {e}");
        }
    }
}

/// Flushes buffered trace output (and the armed metrics dump), then
/// exits with `code`.
pub fn exit_flushed(code: i32) -> ! {
    snet_obs::flush();
    write_metrics_out();
    std::process::exit(code);
}
