//! The `snetctl` on-disk network format: a tagged JSON document holding
//! either a flat circuit or a shuffle-based network (which retains the
//! block structure the adversary needs).

use serde::{Deserialize, Serialize};
use snet_core::element::ElementKind;
use snet_core::network::ComparatorNetwork;
use snet_topology::{IteratedReverseDelta, ShuffleNetwork};

/// A network document as stored on disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "kebab-case")]
pub enum NetworkFile {
    /// An arbitrary leveled comparator network.
    Circuit {
        /// The network itself (validated on deserialize).
        network: ComparatorNetwork,
    },
    /// A shuffle-based network: `Π_i = σ` every stage; only the op vectors
    /// are stored.
    Shuffle {
        /// Number of wires (`2^l`).
        n: usize,
        /// Per-stage op vectors (`n/2` ops each).
        stages: Vec<Vec<ElementKind>>,
    },
    /// An iterated reverse delta network with its recursion trees — the
    /// full generality of the class the lower bound covers.
    Ird {
        /// The network (tree structure revalidated on load).
        network: IteratedReverseDelta,
    },
}

impl NetworkFile {
    /// Lowers to a flat circuit for evaluation/checking.
    pub fn to_network(&self) -> ComparatorNetwork {
        match self {
            NetworkFile::Circuit { network } => network.clone(),
            NetworkFile::Shuffle { n, stages } => {
                ShuffleNetwork::new(*n, stages.clone()).to_network()
            }
            NetworkFile::Ird { network } => network.to_network(),
        }
    }

    /// The shuffle form, if this document is shuffle-based.
    pub fn as_shuffle(&self) -> Option<ShuffleNetwork> {
        match self {
            NetworkFile::Shuffle { n, stages } => Some(ShuffleNetwork::new(*n, stages.clone())),
            _ => None,
        }
    }

    /// The iterated-reverse-delta form the adversary runs on, when this
    /// document belongs to the class (shuffle files embed; IRD files are
    /// native; flat circuits go through structural *recognition* — sound,
    /// not complete, see `snet_topology::recognize`).
    pub fn as_ird(&self) -> Option<IteratedReverseDelta> {
        match self {
            NetworkFile::Circuit { network } => {
                snet_topology::recognize::recognize_iterated(network).ok()
            }
            NetworkFile::Shuffle { .. } => {
                self.as_shuffle().map(|sn| sn.to_iterated_reverse_delta())
            }
            NetworkFile::Ird { network } => Some(network.clone()),
        }
    }

    /// Wraps a shuffle network.
    pub fn from_shuffle(sn: &ShuffleNetwork) -> Self {
        NetworkFile::Shuffle { n: sn.wires(), stages: sn.stages().to_vec() }
    }

    /// Reads a document from a JSON file.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Writes the document as pretty JSON.
    pub fn save(&self, path: &str) -> Result<(), String> {
        let text = serde_json::to_string_pretty(self).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))
    }
}

/// A stored refutation: the witness pair plus metadata, re-verifiable with
/// `snetctl verify`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WitnessFile {
    /// First witness input.
    pub input_a: Vec<u32>,
    /// Second witness input (adjacent transposition of the first).
    pub input_b: Vec<u32>,
    /// The smaller exchanged value.
    pub m: u32,
    /// The wires carrying `m`, `m+1` in `input_a`.
    pub wire_pair: (u32, u32),
    /// Stored network output on `input_a`.
    pub output_a: Vec<u32>,
    /// Stored network output on `input_b`.
    pub output_b: Vec<u32>,
}

impl From<&snet_adversary::SortingRefutation> for WitnessFile {
    fn from(r: &snet_adversary::SortingRefutation) -> Self {
        WitnessFile {
            input_a: r.input_a.clone(),
            input_b: r.input_b.clone(),
            m: r.m,
            wire_pair: r.wire_pair,
            output_a: r.output_a.clone(),
            output_b: r.output_b.clone(),
        }
    }
}

impl WitnessFile {
    /// Converts back to the self-verifying refutation type.
    pub fn to_refutation(&self) -> snet_adversary::SortingRefutation {
        snet_adversary::SortingRefutation {
            input_a: self.input_a.clone(),
            input_b: self.input_b.clone(),
            m: self.m,
            wire_pair: self.wire_pair,
            output_a: self.output_a.clone(),
            output_b: self.output_b.clone(),
        }
    }
}
