//! `snetctl` — generate, inspect, check, refute, and route comparator
//! networks from the command line.
//!
//! ```text
//! snetctl gen --kind bitonic --n 16 -o sorter.json
//! snetctl info sorter.json
//! snetctl check sorter.json --exhaustive
//! snetctl gen --kind random-shuffle --n 64 --depth 12 --seed 7 -o unit.json
//! snetctl refute unit.json -o witness.json
//! snetctl verify unit.json witness.json
//! snetctl route --n 16 --seed 3
//! snetctl render sorter.json
//! ```

mod exit;
mod file;

/// With `--features alloc`, every allocation in the process is counted
/// and surfaced as `snet_mem_live_bytes` / `snet_alloc_total` in the
/// metrics exposition (a few percent overhead; off by default).
#[cfg(feature = "alloc")]
#[global_allocator]
static GLOBAL: snet_obs::alloc::CountingAlloc = snet_obs::alloc::CountingAlloc;

use exit::exit_flushed;
use file::{NetworkFile, WitnessFile};
use rand::SeedableRng;
use snet_adversary::{refute, theorem41};
use snet_core::ir::{default_engine_threads, Executor, PassManager};
use snet_core::perm::Permutation;
use snet_core::sortcheck::{check_random_permutations, is_sorted};
use snet_runtime::{BalancerModel, CountingNetwork, Explorer, Layout};
use snet_sorters::{
    bitonic_shuffle, brick_wall, odd_even_mergesort, periodic_balanced, pratt_network,
};
use snet_store::ArtifactStore;
use snet_topology::benes::{realizes, route_permutation};
use snet_topology::random::{
    random_iterated, random_shuffle_network, RandomDeltaConfig, SplitStyle,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global observability flags, accepted in any position and stripped
    // before subcommand dispatch.
    let code =
        setup_observability(&mut args).and_then(|()| match args.first().map(String::as_str) {
            Some("gen") => cmd_gen(&args[1..]),
            Some("info") => cmd_info(&args[1..]),
            Some("check") => cmd_check(&args[1..]),
            Some("refute") => cmd_refute(&args[1..]),
            Some("verify") => cmd_verify(&args[1..]),
            Some("route") => cmd_route(&args[1..]),
            Some("search") => cmd_search(&args[1..]),
            Some("render") => cmd_render(&args[1..]),
            Some("stats") => cmd_stats(&args[1..]),
            Some("passes") => cmd_passes(&args[1..]),
            Some("certify") => cmd_certify(&args[1..]),
            Some("audit") => cmd_audit(&args[1..]),
            Some("closure") => cmd_closure(&args[1..]),
            Some("duel") => cmd_duel(&args[1..]),
            Some("report") => cmd_report(&args[1..]),
            Some("bench") => cmd_bench(&args[1..]),
            Some("count") => cmd_count(&args[1..]),
            Some("store") => cmd_store(&args[1..]),
            Some("metrics") => cmd_metrics(&args[1..]),
            Some("serve") => cmd_serve(&args[1..]),
            Some("query") => cmd_query(&args[1..]),
            Some("trace") => cmd_trace(&args[1..]),
            Some("--help") | Some("-h") | None => {
                print_usage();
                Ok(())
            }
            Some(other) => Err(format!("unknown command '{other}' (try --help)")),
        });
    snet_obs::flush();
    exit::write_metrics_out();
    if let Err(e) = code {
        eprintln!("snetctl: {e}");
        std::process::exit(exit::GENERIC);
    }
}

/// Handles the global observability surface, removing its flags from
/// `args`: `--trace-out FILE.jsonl` (structured JSONL trace),
/// `--progress` (live progress meter on stderr), and `--metrics-out
/// FILE` (Prometheus exposition of the registry, written at exit). When
/// a sink is active, the run manifest leads the event stream.
///
/// The flight recorder turns on here for every command — that is its
/// point: a bounded in-memory record that costs nothing on a clean exit
/// (no file is written) and is dumped to `flight-<pid>.jsonl` by the
/// panic hook when the process dies. `SNET_FLIGHT=0` disables it;
/// `SNET_FLIGHT_BYTES` sizes the per-thread ring. The fault-injection
/// hook `SNET_FAULT_PANIC_AFTER=N` (panic on the N-th event) exists so
/// CI can prove the dump path works on a real run.
fn setup_observability(args: &mut Vec<String>) -> Result<(), String> {
    use std::sync::Arc;
    let trace_out = take_flag_value(args, "--trace-out")?;
    let metrics_out = take_flag_value(args, "--metrics-out")?;
    let progress = take_flag(args, "--progress");
    if std::env::var("SNET_FLIGHT").ok().as_deref() != Some("0") {
        let ring_bytes =
            std::env::var("SNET_FLIGHT_BYTES").ok().and_then(|v| v.parse::<usize>().ok());
        snet_obs::enable_flight(ring_bytes);
    }
    if let Ok(n) = std::env::var("SNET_FAULT_PANIC_AFTER") {
        snet_obs::arm_fault_after(parse(&n, "SNET_FAULT_PANIC_AFTER")?);
    }
    if let Some(path) = metrics_out {
        exit::arm_metrics_out(path);
    }
    if let Some(path) = &trace_out {
        let sink = snet_obs::JsonlSink::create(path)
            .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
        snet_obs::install_sink(Arc::new(sink));
    }
    if progress {
        snet_obs::install_sink(Arc::new(snet_obs::ProgressSink::new()));
    }
    if trace_out.is_some() || progress {
        let mut manifest = snet_obs::RunManifest::capture("snetctl");
        // Reproducibility: any subcommand seed is provenance — thread it
        // into the manifest so a trace file pins down the exact run.
        if let Some(seed) = flag(args, "--seed") {
            manifest.push_extra("seed", seed);
        }
        manifest.emit();
    }
    Ok(())
}

/// Removes every occurrence of the boolean flag `name`; true if present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

/// Removes `name VALUE` from the argument list, returning the value.
fn take_flag_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{name} requires a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

/// Resolves the artifact store a verdict-producing command should use:
/// `--no-store` disables caching outright, `--store DIR` names a
/// directory, and otherwise the `SNET_STORE` environment variable (when
/// set and non-empty) supplies the default location.
fn resolve_store(args: &[String]) -> Result<Option<ArtifactStore>, String> {
    if has_flag(args, "--no-store") {
        return Ok(None);
    }
    let dir = match flag(args, "--store") {
        Some(dir) => Some(dir.to_string()),
        None => std::env::var("SNET_STORE").ok().filter(|v| !v.is_empty()),
    };
    match dir {
        Some(dir) => ArtifactStore::open(&dir)
            .map(Some)
            .map_err(|e| format!("cannot open artifact store {dir}: {e}")),
        None => Ok(None),
    }
}

fn print_usage() {
    println!(
        "snetctl — comparator-network toolbox (shufflebound)\n\
         \n\
         commands:\n\
         \x20 gen     --kind <bitonic|odd-even|pratt|periodic|brick|random-shuffle|randomized> \
         --n N [--depth D] [--seed S] -o FILE\n\
         \x20 info    FILE                     print wires/depth/size\n\
         \x20 check   FILE [--exhaustive [--threads W]] [--trials T] [--seed S] [--no-passes]\n\
         \x20         [--verdict-out FILE]   with --exhaustive and a store, the verdict is\n\
         \x20         cached by canonical hash and replayed byte-identically on later runs\n\
         \x20 refute  FILE [-o WITNESS] [--k K] [--explain]   (shuffle networks only)\n\
         \x20 verify  FILE WITNESS\n\
         \x20 route   --n N [--seed S | --perm a,b,c,…]\n\
         \x20 search  --n N [--shuffle-legal] [--max-depth D] [--threads W] [--stats]\n\
         \x20         [--frontier-out FILE.json] [-o FILE]   minimum-depth sorting network\n\
         \x20         (--stats prints prune breakdown, TT hit rate, task histograms,\n\
         \x20         and worker balance)\n\
         \x20 render  FILE [--svg | --dot]     diagram (ASCII default)\n\
         \x20 stats   FILE [--trials T] [--seed S]   sortedness statistics\n\
         \x20 passes  FILE                     run the optimizing IR pipeline, show per-pass effect\n\
         \x20 certify FILE -o CERT [--k K]    export a checkable proof bundle\n\
         \x20 audit   CERT [--samples N]      independently check a proof bundle\n\
         \x20 closure --n N (--rho shuffle|identity|bit-reversal|random) [--seed S]\n\
         \x20 duel    --n N [--k K]            interactive adaptive game on stdin\n\
         \x20 report  TRACE.jsonl [--chrome OUT.json]\n\
         \x20         render a --trace-out file: span tree + counters + histograms;\n\
         \x20         --chrome exports Chrome trace-event JSON (chrome://tracing, Perfetto)\n\
         \x20 bench   diff NEW.json [--against OLD.json] [--fail-on-regress PCT]\n\
         \x20         compare a bench baseline (schema snet-bench-baseline/1) against a\n\
         \x20         stored one; exit code 8 if any metric regressed beyond PCT (default 10)\n\
         \x20 count   --width W [--threads T] [--ops N] [--kind bitonic|periodic] [--seed S]\n\
         \x20         run the live counting-network runtime and check the step property;\n\
         \x20         --explore switches to the deterministic interleaving explorer\n\
         \x20         (--exhaustive for all schedules, else --schedules K seeded samples);\n\
         \x20         exit code 9 on any step-property violation (replayable schedule\n\
         \x20         strings are printed and recorded in the run manifest)\n\
         \x20 store   ls | get HASH | stat | gc --max-bytes N\n\
         \x20         inspect the content-addressed artifact store; get accepts unique\n\
         \x20         hex prefixes and exits 10 on a corrupt entry; stat also reports\n\
         \x20         this process's session hit/miss counters and hit rate\n\
         \x20 metrics [FILE] [--watch SECS]\n\
         \x20         Prometheus text exposition of the metrics registry; FILE validates\n\
         \x20         and reprints a --metrics-out dump, --watch repaints every SECS\n\
         \x20         (with FILE: re-reads it each tick, tolerating torn mid-write lines)\n\
         \x20 serve   [--addr HOST:PORT] [--store DIR] [--conn-threads N] [--max-jobs N]\n\
         \x20         [--search-threads N] [--check-threads N] [--access-log FILE.jsonl]\n\
         \x20         [--slow-ms MS]\n\
         \x20         run the snetd verification service (default 127.0.0.1:7421); identical\n\
         \x20         in-flight requests compile once, warm store hits replay byte-identical\n\
         \x20         verdicts, SIGTERM drains gracefully; exit code 11 if it cannot start;\n\
         \x20         --access-log appends one JSONL line per request, --slow-ms dumps\n\
         \x20         requests at least that slow to slow-<trace>.jsonl\n\
         \x20 query   [--addr HOST:PORT] check FILE | adversary FILE [--k K]\n\
         \x20         | search --n N [--shuffle-legal] [--max-depth D] [--threads W]\n\
         \x20         | job ID | cancel ID | health | metrics | debug | trace ID\n\
         \x20         client for a running serve daemon; search streams ND-JSON progress\n\
         \x20         frames to stdout as they arrive; every request forwards an\n\
         \x20         x-snet-trace context and echoes the daemon's trace id on stderr\n\
         \x20 trace   ID [--addr HOST:PORT] [--client TRACE.jsonl] [--chrome OUT.json]\n\
         \x20         [-o OUT.jsonl]\n\
         \x20         fetch a stored server-side request trace; --client merges the query's\n\
         \x20         own --trace-out file into one cross-process timeline (server spans\n\
         \x20         nested under the client span that issued them)\n\
         \n\
         global flags (any command):\n\
         \x20 --trace-out FILE.jsonl           write structured trace events (spans, counters,\n\
         \x20                                  gauges, run manifest); read back with 'report'\n\
         \x20 --metrics-out FILE               write the Prometheus exposition of all metrics\n\
         \x20                                  at process exit; validate with 'metrics FILE'\n\
         \x20 --progress                       live progress meter on stderr for long scans\n\
         \n\
         flight recorder (always on; env-controlled):\n\
         \x20 SNET_FLIGHT=0                    disable the in-memory flight recorder\n\
         \x20 SNET_FLIGHT_BYTES=N              per-thread ring size in bytes (default 524288);\n\
         \x20                                  on panic the rings dump to flight-<pid>.jsonl,\n\
         \x20                                  renderable with 'report'\n\
         \n\
         store flags (check/search/refute/certify/store):\n\
         \x20 --store DIR                      cache verdicts and search transposition spills\n\
         \x20                                  in a content-addressed store at DIR (default:\n\
         \x20                                  $SNET_STORE when set)\n\
         \x20 --no-store                       disable the cache even if SNET_STORE is set"
    );
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: '{s}'"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let kind = flag(args, "--kind").ok_or("gen requires --kind")?;
    let n: usize = parse(flag(args, "--n").ok_or("gen requires --n")?, "--n")?;
    let out = flag(args, "-o").ok_or("gen requires -o FILE")?;
    let seed: u64 = parse(flag(args, "--seed").unwrap_or("0"), "--seed")?;
    let doc = match kind {
        "bitonic" => NetworkFile::from_shuffle(&bitonic_shuffle(n)),
        "odd-even" => NetworkFile::Circuit { network: odd_even_mergesort(n) },
        "pratt" => NetworkFile::Circuit { network: pratt_network(n) },
        "periodic" => NetworkFile::Circuit { network: periodic_balanced(n) },
        "brick" => NetworkFile::Circuit { network: brick_wall(n) },
        "random-shuffle" => {
            let depth: usize = parse(flag(args, "--depth").ok_or("--depth required")?, "--depth")?;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            NetworkFile::from_shuffle(&random_shuffle_network(n, depth, 1.0, &mut rng))
        }
        "randomized" => {
            // The Section 5 randomized candidate: a seeded randomizing
            // prefix, then a truncated bitonic suffix. Same --seed, same
            // sampled network, byte for byte.
            let l = n.trailing_zeros() as usize;
            let depth: usize = parse(flag(args, "--depth").unwrap_or(&l.to_string()), "--depth")?;
            let stages: usize =
                parse(flag(args, "--stages").unwrap_or(&(l * l).to_string()), "--stages")?;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            NetworkFile::Circuit {
                network: snet_sorters::randomized::randomized_then_bitonic(
                    n, depth, stages, &mut rng,
                ),
            }
        }
        "random-ird" => {
            let l = n.trailing_zeros() as usize;
            let blocks: usize = parse(flag(args, "--blocks").unwrap_or("2"), "--blocks")?;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let cfg = RandomDeltaConfig {
                split: SplitStyle::FreeSplit,
                comparator_density: 1.0,
                reverse_bias: 0.5,
                swap_density: 0.0,
            };
            NetworkFile::Ird { network: random_iterated(blocks, l, &cfg, true, &mut rng) }
        }
        other => return Err(format!("unknown --kind {other}")),
    };
    doc.save(out)?;
    let net = doc.to_network();
    println!(
        "wrote {out}: {} wires, depth {}, {} comparators",
        net.wires(),
        net.depth(),
        net.size()
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info requires FILE")?;
    let doc = NetworkFile::load(path)?;
    let net = doc.to_network();
    let kind = match &doc {
        NetworkFile::Circuit { .. } => "circuit",
        NetworkFile::Shuffle { .. } => "shuffle-based",
        NetworkFile::Ird { .. } => "iterated reverse delta",
    };
    println!("file            : {path}");
    println!("kind            : {kind}");
    println!("wires           : {}", net.wires());
    println!("levels          : {}", net.depth());
    println!("comparator depth: {}", net.comparator_depth());
    println!("comparators     : {}", net.size());
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("check requires FILE")?;
    let doc = NetworkFile::load(path)?;
    let net = doc.to_network();
    // `--no-passes` runs the IR without the canonical pipeline: the raw
    // program still carries routes and Pass/Swap ops, exercising the
    // generic (routed) backend instead of the flat fast path.
    let no_passes = has_flag(args, "--no-passes");
    let compile = |net: &snet_core::network::ComparatorNetwork| {
        if no_passes {
            Executor::compile_raw(net)
        } else {
            Executor::compile(net)
        }
    };
    if has_flag(args, "--exhaustive") {
        if net.wires() > 28 {
            return Err(format!("exhaustive 0-1 check infeasible for n = {}", net.wires()));
        }
        let threads: usize = match flag(args, "--threads") {
            Some(t) => parse(t, "--threads")?,
            None => default_engine_threads(),
        };
        let store = resolve_store(args)?;
        let exec = compile(&net);
        // The canonical hash is the cache key: `of_program`
        // re-canonicalizes, so the raw (`--no-passes`) and canonical
        // compilations of one circuit share an address — and the same
        // exhaustive verdict.
        let hash = snet_core::ir::CanonicalHash::of_program(exec.program());
        let (verdict, bytes, hit) = match store.as_ref().and_then(|s| s.get_verdict(&hash)) {
            Some((verdict, bytes)) => (verdict, bytes, true),
            None => {
                let verdict = snet_core::verdict::verdict_zero_one(&exec, threads);
                let bytes = verdict.to_json().into_bytes();
                if let Some(store) = &store {
                    store
                        .put_verdict(&verdict)
                        .map_err(|e| format!("cannot write verdict to store: {e}"))?;
                }
                (verdict, bytes, false)
            }
        };
        if store.is_some() {
            println!("store: {} {hash}", if hit { "hit" } else { "miss" });
            if snet_obs::enabled() {
                let mut manifest = snet_obs::RunManifest::capture("snetctl-check");
                manifest.push_extra("store.result", if hit { "hit" } else { "miss" });
                manifest.push_extra("store.hash", hash.to_hex());
                manifest.emit();
            }
        }
        if let Some(out) = flag(args, "--verdict-out") {
            // The stored bytes verbatim: a warm hit re-emits the cold
            // run's artifact byte for byte.
            std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
            println!("verdict written to {out}");
        }
        return match &verdict.kind {
            snet_core::verdict::VerdictKind::SortCertificate { tested } => {
                println!("sorted all {tested} tested inputs");
                Ok(())
            }
            snet_core::verdict::VerdictKind::Counterexample { input, output, .. } => {
                println!("NOT a sorting network");
                println!("counterexample input : {input:?}");
                println!("unsorted output      : {output:?}");
                exit_flushed(exit::CHECK_COUNTEREXAMPLE);
            }
            snet_core::verdict::VerdictKind::AdversaryWitness { .. } => {
                // An adversary verdict proves non-sorting but carries no
                // 0-1 counterexample; surface it the same way.
                println!("NOT a sorting network ({})", verdict.summary());
                exit_flushed(exit::CHECK_COUNTEREXAMPLE);
            }
        };
    }
    if flag(args, "--verdict-out").is_some() {
        return Err("--verdict-out requires --exhaustive (random trials are not canonical)".into());
    }
    let result = {
        let trials: u64 = parse(flag(args, "--trials").unwrap_or("10000"), "--trials")?;
        let seed: u64 = parse(flag(args, "--seed").unwrap_or("0"), "--seed")?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if no_passes {
            let exec = compile(&net);
            let mut found = None;
            for _ in 0..trials {
                let input: Vec<u32> = Permutation::random(net.wires(), &mut rng).images().to_vec();
                let output = exec.evaluate(&input);
                if !is_sorted(&output) {
                    found = Some(snet_core::sortcheck::SortCheck::Counterexample { input, output });
                    break;
                }
            }
            found.unwrap_or(snet_core::sortcheck::SortCheck::AllSorted { tested: trials })
        } else {
            check_random_permutations(&net, trials, &mut rng)
        }
    };
    match result {
        snet_core::sortcheck::SortCheck::AllSorted { tested } => {
            println!("sorted all {tested} tested inputs");
            Ok(())
        }
        snet_core::sortcheck::SortCheck::Counterexample { input, output } => {
            println!("NOT a sorting network");
            println!("counterexample input : {input:?}");
            println!("unsorted output      : {output:?}");
            exit_flushed(exit::CHECK_COUNTEREXAMPLE);
        }
    }
}

fn cmd_refute(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("refute requires FILE")?;
    let doc = NetworkFile::load(path)?;
    let ird = doc.as_ird().ok_or(
        "refute runs the iterated-reverse-delta adversary: the file must be \
         shuffle-based, an IRD, or a circuit that structurally recognizes as one",
    )?;
    let l = ird.wires().trailing_zeros() as usize;
    let k: usize = parse(flag(args, "--k").unwrap_or(&l.to_string()), "--k")?;
    let net = ird.to_network();
    let store = resolve_store(args)?;
    let hash = snet_core::ir::CanonicalHash::of_network(&net);
    // A cached adversary witness for this canonical form replays without
    // re-running the adversary; it is still independently re-verified
    // below, so a stale or forged store entry cannot vouch for itself.
    let cached = store.as_ref().and_then(|s| s.get_verdict(&hash)).and_then(|(v, _)| {
        use snet_core::verdict::VerdictKind;
        match v.kind {
            VerdictKind::AdversaryWitness {
                input_a,
                input_b,
                m,
                wire_a,
                wire_b,
                output_a,
                output_b,
            } => Some(snet_adversary::SortingRefutation {
                input_a,
                input_b,
                m,
                wire_pair: (wire_a, wire_b),
                output_a,
                output_b,
            }),
            _ => None,
        }
    });
    let r = match cached {
        Some(r) => {
            println!("store: hit {hash} (replaying cached adversary witness)");
            r
        }
        None => {
            let out = theorem41(&ird, k);
            if has_flag(args, "--explain") {
                print!("{}", out.explain());
            }
            println!("adversary: |D| = {} after {} blocks", out.d_set.len(), out.blocks.len());
            if out.d_set.len() < 2 {
                println!("no witness available at this depth (the network may sort).");
                exit_flushed(exit::ADVERSARY_EXHAUSTED);
            }
            let r = refute(&net, &out.input_pattern).map_err(|e| e.to_string())?;
            if let Some(store) = &store {
                store
                    .put_verdict(&r.to_verdict(&net))
                    .map_err(|e| format!("cannot write witness verdict to store: {e}"))?;
                println!("store: miss {hash} (witness verdict cached)");
            }
            r
        }
    };
    r.verify(&net).map_err(|e| format!("internal: witness failed verification: {e}"))?;
    println!(
        "refuted: values {} and {} are never compared; witness pair differs on wires {:?}",
        r.m,
        r.m + 1,
        r.wire_pair
    );
    println!("unsorted on input: {:?}", r.unsorted_witness());
    if let Some(out_path) = flag(args, "-o") {
        let wf = WitnessFile::from(&r);
        std::fs::write(out_path, serde_json::to_string_pretty(&wf).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        println!("witness written to {out_path}");
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let net_path = args.first().ok_or("verify requires FILE WITNESS")?;
    let wit_path = args.get(1).ok_or("verify requires FILE WITNESS")?;
    let doc = NetworkFile::load(net_path)?;
    // Witnesses produced by `refute` are against the embedded
    // iterated-reverse-delta form of a shuffle file.
    let net = match doc.as_ird() {
        Some(ird) => ird.to_network(),
        None => doc.to_network(),
    };
    let text = std::fs::read_to_string(wit_path).map_err(|e| e.to_string())?;
    let wf: WitnessFile = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let r = wf.to_refutation();
    r.verify(&net).map_err(|e| format!("witness REJECTED: {e}"))?;
    println!("witness verified: the network maps both inputs to the same permutation");
    let exec = Executor::compile(&net);
    println!("output on π  sorted: {}", is_sorted(&exec.evaluate(&r.input_a)));
    println!("output on π′ sorted: {}", is_sorted(&exec.evaluate(&r.input_b)));
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let n: usize = parse(flag(args, "--n").ok_or("route requires --n")?, "--n")?;
    let perm = if let Some(spec) = flag(args, "--perm") {
        let images: Result<Vec<u32>, _> = spec.split(',').map(|s| s.trim().parse()).collect();
        let images = images.map_err(|_| format!("bad --perm '{spec}'"))?;
        Permutation::from_images(images).map_err(|e| e.to_string())?
    } else {
        let seed: u64 = parse(flag(args, "--seed").unwrap_or("0"), "--seed")?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Permutation::random(n, &mut rng)
    };
    if perm.len() != n {
        return Err(format!("--perm has {} images, --n is {n}", perm.len()));
    }
    let net = route_permutation(&perm);
    println!("permutation : {:?}", perm.images());
    println!("Beneš depth : {} switch levels, {} comparators", net.depth(), net.size());
    println!("realized    : {}", realizes(&net, &perm));
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    use snet_search::{SearchConfig, SearchMode};
    let n: usize = parse(flag(args, "--n").ok_or("search requires --n")?, "--n")?;
    if !(2..=16).contains(&n) {
        return Err(format!("search supports 2 <= n <= 16 (got {n})"));
    }
    let mode = if has_flag(args, "--shuffle-legal") {
        if !n.is_power_of_two() {
            return Err(format!("--shuffle-legal requires n to be a power of two (got {n})"));
        }
        SearchMode::ShuffleLegal
    } else {
        SearchMode::Unrestricted
    };
    let mut cfg = SearchConfig::new(n, mode);
    if let Some(d) = flag(args, "--max-depth") {
        cfg.max_depth = parse(d, "--max-depth")?;
    }
    cfg.threads = match flag(args, "--threads") {
        Some(t) => parse(t, "--threads")?,
        None => default_engine_threads(),
    };
    cfg.store = resolve_store(args)?;
    let caching = cfg.store.is_some();

    let outcome = snet_search::search(&cfg);

    if caching {
        // Warm refutation facts only skip work; the outcome is the same.
        println!(
            "store: {} transposition facts preloaded, {} spilled ({})",
            outcome.tt_preloaded,
            outcome.tt_spilled,
            cfg.tt_label()
        );
        if let (Some(store), Some(v)) = (&cfg.store, &outcome.verdict) {
            // The witness's exhaustive verdict is content-addressed, so a
            // later `check` of the found network is a cache hit.
            store
                .put_verdict(v)
                .map_err(|e| format!("cannot write witness verdict to store: {e}"))?;
            println!("store: witness verdict cached under {}", v.hash);
        }
        if snet_obs::enabled() {
            let mut manifest = snet_obs::RunManifest::capture("snetctl-search");
            manifest.push_extra("store.tt_preloaded", outcome.tt_preloaded.to_string());
            manifest.push_extra("store.tt_spilled", outcome.tt_spilled.to_string());
            manifest.emit();
        }
    }

    // Everything printed here is schedule-independent (the per-round
    // node/hit counters are not — they live in the frontier document).
    println!(
        "search: n = {n}, mode = {}, adversary floor = {}",
        outcome.mode.name(),
        outcome.floor
    );
    for round in &outcome.rounds {
        let verdict = if round.sat { "satisfiable" } else { "refuted" };
        println!(
            "depth {:>2}: {verdict} ({} symmetry-broken prefix tasks)",
            round.budget, round.tasks
        );
    }

    if has_flag(args, "--stats") {
        print!("{}", search_stats_table(&outcome));
    }

    if let Some(path) = flag(args, "--frontier-out") {
        write_frontier(&outcome, path)?;
        println!("frontier written to {path}");
    }

    let Some(depth) = outcome.optimal_depth else {
        println!(
            "no sorting network on {n} wires within depth {} ({})",
            cfg.max_depth,
            outcome.mode.name()
        );
        exit_flushed(exit::SEARCH_REFUTED);
    };
    let net = outcome.network.as_ref().expect("witness network accompanies the depth");
    println!("optimal depth: {depth} ({} comparators over {} wires)", net.size(), net.wires());
    match outcome.verified() {
        Some(true) => println!("verified: sharded 0-1 check passed on all {} inputs", 1u64 << n),
        other => return Err(format!("internal: witness failed the sharded 0-1 check ({other:?})")),
    }
    if let Some(out) = flag(args, "-o") {
        let doc = match &outcome.shuffle {
            Some(sn) => NetworkFile::from_shuffle(sn),
            None => NetworkFile::Circuit { network: net.clone() },
        };
        doc.save(out)?;
        println!("wrote {out}");
    }
    Ok(())
}

/// Renders the `--stats` summary: prune breakdown as a percentage of
/// DFS nodes, transposition-table behaviour, prefix symmetry reduction,
/// task-granularity histogram percentiles, and per-worker balance — all
/// from counters carried in the outcome, so no sink is required.
fn search_stats_table(outcome: &snet_search::SearchOutcome) -> String {
    use snet_obs::report::{render_breakdown, render_hist_table};
    use std::fmt::Write as _;
    let t = &outcome.totals;
    let mut out = String::from("\n");
    let _ = writeln!(
        out,
        "search stats (timing-dependent; {} nodes over {} rounds):",
        t.nodes,
        outcome.rounds.len()
    );
    out.push('\n');
    out.push_str(&render_breakdown(
        "prune breakdown (vs nodes)",
        t.nodes,
        &[
            ("oracle floor cuts", t.oracle_cuts),
            ("transposition hits", t.tt_hits),
            ("subsumed children", t.subsumed),
            ("no-op layer skips", t.noop_skips),
            ("witness fast-path skips", t.witness_skips),
        ],
    ));
    out.push('\n');
    let _ = writeln!(out, "transposition table:");
    let _ = writeln!(out, "  probes         {:>14}", t.tt_hits + t.tt_misses);
    let _ = writeln!(out, "  hit rate       {:>13.1}%", 100.0 * t.tt_hit_rate());
    let _ = writeln!(out, "  facts stored   {:>14}", t.tt_stores);
    let _ = writeln!(out, "  facts resident {:>14}", outcome.tt_facts);
    let _ = writeln!(out, "  drops (full)   {:>14}", t.tt_evicts);
    if let Some(last) = outcome.rounds.last() {
        out.push('\n');
        let _ = writeln!(out, "prefix symmetry (last round, budget {}):", last.budget);
        let _ = writeln!(out, "  moves in model {:>14}", last.moves_total);
        let _ = writeln!(out, "  first layers   {:>14}", last.firsts_kept);
        let _ = writeln!(out, "  second layers  {:>14}", last.seconds_kept);
        let _ = writeln!(out, "  tasks (dedup)  {:>14}", last.tasks);
    }
    out.push('\n');
    out.push_str(&render_hist_table([
        ("task nodes", &outcome.hists.task_nodes),
        ("task wall µs", &outcome.hists.task_us),
    ]));
    if let Some(last) = outcome.rounds.last() {
        if !last.workers.is_empty() {
            out.push('\n');
            let _ = writeln!(
                out,
                "{:<10} {:>10} {:>10} {:>10} {:>14}",
                "worker", "run", "aborted", "steals", "nodes"
            );
            for w in &last.workers {
                let _ = writeln!(
                    out,
                    "{:<10} {:>10} {:>10} {:>10} {:>14}",
                    w.worker, w.tasks_run, w.tasks_aborted, w.steals, w.nodes
                );
            }
        }
    }
    out
}

/// Writes the `results/search_frontier.json` schema-v2 document: the run
/// manifest plus per-budget frontier statistics. Unlike stdout, this
/// includes the timing-dependent counters (nodes, table hits, aborts).
fn write_frontier(outcome: &snet_search::SearchOutcome, path: &str) -> Result<(), String> {
    use serde_json::Value;
    fn vu(v: u64) -> Value {
        Value::Number(serde_json::Number::U(v))
    }
    fn vb(v: bool) -> Value {
        Value::Bool(v)
    }
    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
    fn stats_value(s: &snet_search::SearchStats) -> Value {
        obj(vec![
            ("nodes", vu(s.nodes)),
            ("tt_hits", vu(s.tt_hits)),
            ("tt_misses", vu(s.tt_misses)),
            ("tt_stores", vu(s.tt_stores)),
            ("tt_evicts", vu(s.tt_evicts)),
            ("oracle_cuts", vu(s.oracle_cuts)),
            ("subsumed", vu(s.subsumed)),
            ("noop_skips", vu(s.noop_skips)),
            ("witness_skips", vu(s.witness_skips)),
            ("tasks_run", vu(s.tasks_run)),
            ("tasks_aborted", vu(s.tasks_aborted)),
            ("steals", vu(s.steals)),
        ])
    }
    let manifest: Value =
        serde_json::from_str(&snet_obs::RunManifest::capture("snetctl").to_json())
            .map_err(|e| format!("manifest: {e}"))?;
    let rounds: Vec<Value> = outcome
        .rounds
        .iter()
        .map(|r| {
            obj(vec![
                ("budget", vu(r.budget as u64)),
                ("sat", vb(r.sat)),
                ("tasks", vu(r.tasks as u64)),
                ("elapsed_ms", vu(r.elapsed_ms)),
                ("stats", stats_value(&r.stats)),
            ])
        })
        .collect();
    let doc = obj(vec![
        ("schema", Value::String("snet-search-frontier/2".into())),
        ("schema_version", vu(2)),
        ("manifest", manifest),
        ("n", vu(outcome.n as u64)),
        ("mode", Value::String(outcome.mode.name().into())),
        ("floor", vu(outcome.floor as u64)),
        ("max_depth", vu(outcome.max_depth as u64)),
        ("optimal_depth", outcome.optimal_depth.map(|d| vu(d as u64)).unwrap_or(Value::Null)),
        ("verified", outcome.verified().map(vb).unwrap_or(Value::Null)),
        ("rounds", Value::Array(rounds)),
        ("totals", stats_value(&outcome.totals)),
    ]);
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?)
        .map_err(|e| format!("{path}: {e}"))
}

fn cmd_render(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("render requires FILE")?;
    let doc = NetworkFile::load(path)?;
    let net = doc.to_network();
    if has_flag(args, "--svg") {
        print!("{}", snet_core::viz::to_svg(&net));
        return Ok(());
    }
    if has_flag(args, "--dot") {
        print!("{}", snet_core::viz::to_dot(&net));
        return Ok(());
    }
    if net.wires() > 64 {
        return Err("ASCII render is for small networks (n <= 64); try --svg/--dot".into());
    }
    print!("{}", net.render_ascii());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats requires FILE")?;
    let doc = NetworkFile::load(path)?;
    let net = doc.to_network();
    let trials: u64 = parse(flag(args, "--trials").unwrap_or("2000"), "--trials")?;
    let seed: u64 = parse(flag(args, "--seed").unwrap_or("0"), "--seed")?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = net.wires();
    let exec = Executor::compile(&net);
    let mut sorted = 0u64;
    let mut disl_sum = 0.0f64;
    let mut settle_sum = 0usize;
    let mut settle_max = 0usize;
    for _ in 0..trials {
        let input: Vec<u32> = Permutation::random(n, &mut rng).images().to_vec();
        let out = exec.evaluate(&input);
        if is_sorted(&out) {
            sorted += 1;
        }
        disl_sum += out
            .iter()
            .enumerate()
            .map(|(i, &v)| (v as i64 - i as i64).unsigned_abs() as f64)
            .sum::<f64>()
            / n as f64;
        let s = snet_core::trace::settle_depth(&net, &input);
        settle_sum += s;
        settle_max = settle_max.max(s);
    }
    println!("inputs            : {trials} random permutations (seed {seed})");
    println!("fraction sorted   : {:.4}", sorted as f64 / trials as f64);
    println!("mean dislocation  : {:.3}", disl_sum / trials as f64);
    println!(
        "settle depth      : mean {:.1}, max {settle_max} (of {} levels)",
        settle_sum as f64 / trials as f64,
        net.depth()
    );
    Ok(())
}

fn cmd_passes(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("passes requires FILE")?;
    let doc = NetworkFile::load(path)?;
    let net = doc.to_network();
    // RedundantElim is exhaustive over 2^n inputs below its limit; above
    // it the pass silently degrades to structural dedup, which is fine.
    let exec = Executor::compile_with(&net, &PassManager::optimizing());
    let raw = snet_core::ir::Program::from_network(&net);
    println!(
        "source: {} wires, {} levels, {} comparators, {} raw ops",
        net.wires(),
        net.depth(),
        net.size(),
        raw.op_count()
    );
    println!();
    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>8} {:>10} {:>7}",
        "pass", "ops", "size", "depth", "elim", "time", "%"
    );
    let total_nanos: u128 = exec.pass_records().iter().map(|r| r.nanos).sum();
    for r in exec.pass_records() {
        println!(
            "{:<18} {:>5} → {:<4} {:>5} → {:<4} {:>4} → {:<3} {:>8} {:>10} {:>6.1}%",
            r.name,
            r.ops_before,
            r.ops_after,
            r.size_before,
            r.size_after,
            r.depth_before,
            r.depth_after,
            r.ops_eliminated(),
            human_nanos(r.nanos),
            if total_nanos > 0 { 100.0 * r.nanos as f64 / total_nanos as f64 } else { 0.0 }
        );
    }
    println!("{:<18} {:>49} {:>10}", "total", "", human_nanos(total_nanos));
    let prog = exec.program();
    println!();
    println!(
        "result: {} ops ({} comparators), depth {} — {} ops eliminated in total",
        prog.op_count(),
        prog.size(),
        prog.depth(),
        raw.op_count() - prog.op_count()
    );
    Ok(())
}

/// Adaptive-unit rendering of a nanosecond duration for the passes table.
fn human_nanos(ns: u128) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let chrome_out = take_flag_value(&mut args, "--chrome")?;
    let path = args.first().ok_or("report requires TRACE.jsonl")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if let Some(out) = chrome_out {
        let json = snet_obs::trace_to_chrome(&text)?;
        std::fs::write(&out, json).map_err(|e| format!("{out}: {e}"))?;
        println!("chrome trace written to {out} (load in chrome://tracing or ui.perfetto.dev)");
        return Ok(());
    }
    // Lossy on purpose: flight-recorder dumps legitimately end (or,
    // after a ring wrap, begin) with a torn line. Anything else skipped
    // is surfaced, not hidden.
    let (report, skipped) = snet_obs::report::parse_trace_lossy(&text);
    if skipped > 0 {
        if report.is_empty() {
            return Err(format!("{path}: no parseable trace events ({skipped} malformed lines)"));
        }
        eprintln!("report: skipped {skipped} malformed line(s) (torn flight-ring tail?)");
    }
    print!("{}", snet_obs::report::render(&report));
    Ok(())
}

/// `metrics [FILE] [--watch SECS]` — Prometheus text exposition
/// (`text/plain; version=0.0.4`). With FILE, validates and re-prints a
/// previously written `--metrics-out` dump (CI uses this as the format
/// checker); without, snapshots this process's own registry, which
/// carries the process-level series (uptime, RSS, allocator stats with
/// the `alloc` feature).
///
/// `--watch SECS` repaints until interrupted. With FILE it re-reads the
/// file each tick through the lossy parser — a dump being rewritten by a
/// live daemon can hold a torn tail line mid-refresh, which is worth one
/// footer note, not a blank screen. The redraw is cursor-home plus
/// per-line and end-of-screen erases (never a full clear), so a frame
/// that shrinks leaves no stale lines and the repaint never flickers.
fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let watch = take_flag_value(&mut args, "--watch")?;
    let path = args.first().cloned();
    let Some(secs) = watch else {
        match path {
            Some(path) => {
                let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                let parsed =
                    snet_obs::promtext::parse(&text).map_err(|e| format!("{path}: {e}"))?;
                print!("{text}");
                eprintln!(
                    "metrics: {path} ok ({} series, {} typed families)",
                    parsed.series.len(),
                    parsed.types.len()
                );
            }
            None => print!("{}", snet_obs::registry::render_prometheus()),
        }
        return Ok(());
    };
    let secs: f64 = parse(&secs, "--watch")?;
    loop {
        let frame = match &path {
            Some(p) => match std::fs::read_to_string(p) {
                Ok(text) => {
                    let (parsed, skipped) = snet_obs::promtext::parse_lossy(&text);
                    let mut frame = text;
                    if !frame.ends_with('\n') && !frame.is_empty() {
                        frame.push('\n');
                    }
                    frame.push_str(&format!(
                        "# metrics: {p}: {} series, {} typed families",
                        parsed.series.len(),
                        parsed.types.len()
                    ));
                    if skipped > 0 {
                        frame.push_str(&format!(", {skipped} torn line(s) skipped"));
                    }
                    frame.push('\n');
                    frame
                }
                // A vanished or unreadable file is a transient state
                // while watching (daemon restarting, dump mid-rename);
                // report it in-frame and keep polling.
                Err(e) => format!("metrics: {p}: {e}\n"),
            },
            None => snet_obs::registry::render_prometheus(),
        };
        // Home the cursor, erase each line as it is overwritten, then
        // erase whatever remains of the previous (possibly longer)
        // frame. Unlike a `\x1b[2J` full clear before the paint, this
        // never shows an intermediate blank screen.
        print!("\x1b[H{}\x1b[J", frame.replace('\n', "\x1b[K\n"));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_secs_f64(secs.max(0.1)));
    }
}

/// `serve [--addr HOST:PORT] [--store DIR] [--conn-threads N]
/// [--max-jobs N] [--search-threads N] [--check-threads N]` — runs the
/// snetd verification service in-process (the same engine as the
/// standalone `snet-snetd` binary). `--store` (or `$SNET_STORE`) makes
/// repeat queries warm store hits; SIGTERM/SIGINT drain gracefully:
/// running jobs are cancelled, search TT spills land in the store, and
/// buffered telemetry flushes. Exits 11 if the daemon cannot start.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let mut cfg = snet_service::ServeConfig {
        addr: "127.0.0.1:7421".into(),
        ..snet_service::ServeConfig::default()
    };
    if let Some(addr) = take_flag_value(&mut args, "--addr")? {
        cfg.addr = addr;
    }
    cfg.store = take_flag_value(&mut args, "--store")?
        .or_else(|| std::env::var("SNET_STORE").ok().filter(|v| !v.is_empty()))
        .map(std::path::PathBuf::from);
    if let Some(v) = take_flag_value(&mut args, "--conn-threads")? {
        cfg.conn_threads = parse(&v, "--conn-threads")?;
    }
    if let Some(v) = take_flag_value(&mut args, "--max-jobs")? {
        cfg.max_jobs = parse(&v, "--max-jobs")?;
    }
    if let Some(v) = take_flag_value(&mut args, "--search-threads")? {
        cfg.search_threads = parse(&v, "--search-threads")?;
    }
    if let Some(v) = take_flag_value(&mut args, "--check-threads")? {
        cfg.check_threads = parse(&v, "--check-threads")?;
    }
    cfg.access_log = take_flag_value(&mut args, "--access-log")?.map(std::path::PathBuf::from);
    if let Some(v) = take_flag_value(&mut args, "--slow-ms")? {
        cfg.slow_ms = Some(parse(&v, "--slow-ms")?);
    }
    if let Some(extra) = args.first() {
        return Err(format!("serve: unexpected argument '{extra}'"));
    }
    snet_service::install_signal_handlers();
    if let Err(e) = snet_service::serve(cfg) {
        eprintln!("snetctl: serve: {e}");
        exit_flushed(exit::DAEMON_FAILED);
    }
    Ok(())
}

/// `query [--addr HOST:PORT] SUBCOMMAND` — the client for a running
/// `serve` daemon. `check FILE` and `adversary FILE` submit a network
/// document and print the verdict (cache provenance goes to stderr;
/// exit codes mirror the local `check`/`refute` commands). `search`
/// streams the job's ND-JSON progress frames to stdout as they arrive
/// and then prints the job's result document. `job ID` / `cancel ID`
/// inspect and stop jobs; `health` and `metrics` print the daemon's
/// liveness document and Prometheus exposition; `debug` fetches the
/// tracez-style request ring and `trace ID` a stored request trace.
///
/// Every invocation generates a trace context and forwards it as
/// `x-snet-trace`, so the daemon's spans, counters, and progress frames
/// for this request all carry one trace id — the id is echoed on stderr
/// and, with `--trace-out`, the client's own `query.request` span joins
/// the same trace, which `snetctl trace ID --client FILE` can merge
/// into a single cross-process timeline.
fn cmd_query(args: &[String]) -> Result<(), String> {
    use snet_service::client;
    let mut args = args.to_vec();
    let addr =
        take_flag_value(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7421".to_string());
    let sub = args.first().cloned().ok_or(
        "query requires a subcommand (try check, adversary, search, job, cancel, health, \
         metrics, debug, trace)",
    )?;
    let tctx = snet_obs::TraceContext::generate();
    let qspan = snet_obs::span("query.request")
        .attr(snet_obs::TRACE_ATTR, tctx.trace.to_hex())
        .attr("subcommand", &sub);
    // The forwarded context parents the server's request span under
    // this client span (id 0 — "no recording client span" — when no
    // trace sink is installed).
    let trace_header =
        snet_obs::TraceContext { trace: tctx.trace, parent_span: qspan.id() }.to_header();
    let trace_headers: [(&str, &str); 1] = [(snet_obs::TRACE_HEADER, trace_header.as_str())];
    // One failure message shape for every transport error: the daemon
    // being down reads the same way regardless of subcommand.
    let send = |method: &str, path: &str, body: Option<&[u8]>| {
        client::request_with(&addr, method, path, body, &trace_headers)
            .map_err(|e| format!("query: {method} {addr}{path}: {e}"))
    };
    match sub.as_str() {
        "check" => {
            let path = args.get(1).ok_or("query check requires a network FILE")?;
            let net = NetworkFile::load(path)?.to_network();
            let body = serde_json::to_string(&snet_core::api::CheckRequest { network: net })
                .map_err(|e| e.to_string())?;
            let resp = send("POST", "/v1/check", Some(body.as_bytes()))?;
            let text = print_query_answer(&resp)?;
            let verdict = snet_core::verdict::Verdict::parse(&text)
                .map_err(|e| format!("query: unparseable verdict from daemon: {e}"))?;
            if !verdict.is_sorting() {
                exit_flushed(exit::CHECK_COUNTEREXAMPLE);
            }
            Ok(())
        }
        "adversary" => {
            let path = args.get(1).ok_or("query adversary requires a network FILE")?.clone();
            let k =
                take_flag_value(&mut args, "--k")?.map(|v| parse::<u32>(&v, "--k")).transpose()?;
            let file = NetworkFile::load(&path)?;
            let Some(shuffle) = file.as_shuffle() else {
                return Err(format!(
                    "{path}: the adversary endpoint takes a shuffle-based network document"
                ));
            };
            let req = snet_core::api::AdversaryRequest {
                n: shuffle.wires() as u32,
                stages: shuffle.stages().to_vec(),
                k,
            };
            let body = serde_json::to_string(&req).map_err(|e| e.to_string())?;
            let resp = send("POST", "/v1/adversary", Some(body.as_bytes()))?;
            if resp.status == 422 && resp.text().contains("exhausted") {
                eprintln!("snetctl: query: {}", resp.text());
                exit_flushed(exit::ADVERSARY_EXHAUSTED);
            }
            print_query_answer(&resp)?;
            Ok(())
        }
        "search" => {
            let n: u32 = take_flag_value(&mut args, "--n")?
                .ok_or("query search requires --n N")?
                .parse()
                .map_err(|_| "cannot parse --n".to_string())?;
            let mode = if take_flag(&mut args, "--shuffle-legal") {
                "shuffle-legal"
            } else {
                "unrestricted"
            };
            let max_depth = take_flag_value(&mut args, "--max-depth")?
                .map(|v| parse::<u32>(&v, "--max-depth"))
                .transpose()?;
            let threads = take_flag_value(&mut args, "--threads")?
                .map(|v| parse::<u32>(&v, "--threads"))
                .transpose()?;
            let req =
                snet_core::api::SearchRequest { n, mode: mode.to_string(), max_depth, threads };
            let body = serde_json::to_string(&req).map_err(|e| e.to_string())?;
            let resp = client::stream_lines_with(
                &addr,
                "POST",
                "/v1/search",
                Some(body.as_bytes()),
                &trace_headers,
                &mut |line| {
                    println!("{line}");
                    true
                },
            )
            .map_err(|e| format!("query: POST {addr}/v1/search: {e}"))?;
            if let Some(t) = resp.header(snet_obs::TRACE_HEADER) {
                eprintln!("snetctl: query: trace {t}");
            }
            if resp.status != 200 {
                return Err(format!("query: daemon answered {}: {}", resp.status, resp.text()));
            }
            let job = resp
                .header("x-snet-job")
                .ok_or("query: stream response carries no x-snet-job header")?
                .to_string();
            let status_resp = send("GET", &format!("/v1/jobs/{job}"), None)?;
            let status = snet_core::api::JobStatus::parse(&status_resp.text())
                .map_err(|e| format!("query: unparseable job status: {e}"))?;
            eprintln!("snetctl: query: job {job} {}", status.state.name());
            if let Some(result) = &status.result {
                println!("{}", serde_json::to_string(result).map_err(|e| e.to_string())?);
            }
            if status.state == snet_core::api::JobState::Failed {
                return Err(status.error.unwrap_or_else(|| "job failed".to_string()));
            }
            Ok(())
        }
        "job" => {
            let id = args.get(1).ok_or("query job requires a job ID")?;
            let resp = send("GET", &format!("/v1/jobs/{id}"), None)?;
            print_query_answer(&resp)?;
            Ok(())
        }
        "cancel" => {
            let id = args.get(1).ok_or("query cancel requires a job ID")?;
            let resp = send("DELETE", &format!("/v1/jobs/{id}"), None)?;
            print_query_answer(&resp)?;
            Ok(())
        }
        "health" => {
            let resp = send("GET", "/healthz", None)?;
            print_query_answer(&resp)?;
            Ok(())
        }
        "metrics" => {
            let resp = send("GET", "/metrics", None)?;
            print_query_answer(&resp)?;
            Ok(())
        }
        "debug" => {
            let resp = send("GET", "/v1/debug/requests", None)?;
            print_query_answer(&resp)?;
            Ok(())
        }
        "trace" => {
            let id = args.get(1).ok_or("query trace requires a trace ID")?;
            let resp = send("GET", &format!("/v1/trace/{id}"), None)?;
            print_query_answer(&resp)?;
            Ok(())
        }
        other => Err(format!(
            "unknown query subcommand '{other}' (try check, adversary, search, job, cancel, \
             health, metrics, debug, trace)"
        )),
    }
}

/// Prints a query response body to stdout (newline-terminated) with the
/// cache/job provenance headers on stderr; non-2xx responses become
/// errors carrying the daemon's message.
fn print_query_answer(resp: &snet_service::client::Response) -> Result<String, String> {
    if resp.status / 100 != 2 {
        return Err(format!("query: daemon answered {}: {}", resp.status, resp.text()));
    }
    if let Some(cache) = resp.header("x-snet-cache") {
        match resp.header("x-snet-job") {
            Some(job) => eprintln!("snetctl: query: cache {cache} (job {job})"),
            None => eprintln!("snetctl: query: cache {cache}"),
        }
    }
    if let Some(t) = resp.header(snet_obs::TRACE_HEADER) {
        eprintln!("snetctl: query: trace {t}");
    }
    if let Some(link) = resp.header(snet_service::LINK_HEADER) {
        eprintln!("snetctl: query: linked trace {link}");
    }
    let text = resp.text();
    print!("{text}");
    if !text.ends_with('\n') && !text.is_empty() {
        println!();
    }
    Ok(text)
}

/// `trace ID [--addr HOST:PORT] [--client TRACE.jsonl] [--chrome OUT.json]
/// [-o OUT.jsonl]` — fetches a stored request trace from a running
/// daemon (`GET /v1/trace/{id}`; the ID is what `query` echoes on
/// stderr — a bare 32-hex trace id or the full `trace-span` header
/// value). With `--client`, the client-side `--trace-out` file of the
/// same query is merged in: server span/thread ids are remapped into
/// their own range, server timestamps are shifted onto the client's
/// clock (anchored at the `query.request` → `http.request` span pair),
/// and the server's request span is reparented under the client span
/// that issued it — one cross-process timeline. `--chrome` exports
/// Chrome trace-event JSON, `-o` the merged JSONL; the default renders
/// the span-tree report.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    use snet_service::client;
    let mut args = args.to_vec();
    let addr =
        take_flag_value(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7421".to_string());
    let client_path = take_flag_value(&mut args, "--client")?;
    let chrome_out = take_flag_value(&mut args, "--chrome")?;
    let jsonl_out = take_flag_value(&mut args, "-o")?;
    // Accept the full `trace-span` value `query` echoes, or the bare id.
    let id = args
        .first()
        .and_then(|full| full.split('-').next())
        .filter(|s| !s.is_empty())
        .ok_or("trace requires a trace ID (32 hex digits)")?
        .to_string();
    let resp = client::request(&addr, "GET", &format!("/v1/trace/{id}"), None)
        .map_err(|e| format!("trace: GET {addr}/v1/trace/{id}: {e}"))?;
    if resp.status != 200 {
        return Err(format!("trace: daemon answered {}: {}", resp.status, resp.text()));
    }
    let server = snet_obs::report::parse_events(&resp.text())
        .map_err(|e| format!("trace: server events: {e}"))?;
    let merged = match &client_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let client_events =
                snet_obs::report::parse_events(&text).map_err(|e| format!("trace: {path}: {e}"))?;
            let (merged, anchored) = merge_cross_process(&client_events, &server, &id);
            eprintln!(
                "snetctl: trace {id}: merged {} client + {} server events{}",
                client_events.len(),
                server.len(),
                if anchored { "" } else { " (no matching client span; left side by side)" }
            );
            merged
        }
        None => server,
    };
    if let Some(out) = chrome_out {
        let json = snet_obs::to_chrome_trace(&merged);
        std::fs::write(&out, json).map_err(|e| format!("{out}: {e}"))?;
        println!("chrome trace written to {out} (load in chrome://tracing or ui.perfetto.dev)");
        return Ok(());
    }
    let mut text = String::new();
    for e in &merged {
        text.push_str(&e.to_json_line());
        text.push('\n');
    }
    if let Some(out) = jsonl_out {
        std::fs::write(&out, text).map_err(|e| format!("{out}: {e}"))?;
        println!("merged trace written to {out}");
        return Ok(());
    }
    let (report, skipped) = snet_obs::report::parse_trace_lossy(&text);
    if skipped > 0 {
        eprintln!("trace: skipped {skipped} malformed line(s)");
    }
    print!("{}", snet_obs::report::render(&report));
    Ok(())
}

/// Stitches a server-side request trace onto the client trace that
/// issued it: server span/parent ids move up by a fixed offset (the two
/// processes' id counters both start near zero), server thread ordinals
/// move past the client's, server timestamps shift onto the client's
/// clock so the server's `http.request` span starts when the client's
/// `query.request` span does, and the server request span is reparented
/// under the client span. Returns the merged events and whether the
/// anchor pair was found (without it, events are still merged but keep
/// their own clocks and roots).
fn merge_cross_process(
    client: &[snet_obs::Event],
    server: &[snet_obs::Event],
    trace_hex: &str,
) -> (Vec<snet_obs::Event>, bool) {
    use snet_obs::EventKind;
    const ID_OFFSET: u64 = 1 << 32;
    let has_trace_attr =
        |e: &snet_obs::Event| e.attrs.iter().any(|(k, v)| k == "trace" && v == trace_hex);
    // Span attrs ride on the SpanEnd event, so identify the anchor span
    // by whichever event carries the trace attr, then take its
    // SpanStart time (falling back to end-minus-duration on a torn
    // trace missing the start line).
    let anchor_of = |events: &[snet_obs::Event], name: &str| -> Option<(u64, u64)> {
        let id = events.iter().find(|e| e.name == name && has_trace_attr(e))?.id;
        let start = events
            .iter()
            .find(|e| e.kind == EventKind::SpanStart && e.id == id)
            .map(|e| e.t_us)
            .or_else(|| {
                events
                    .iter()
                    .find(|e| e.kind == EventKind::SpanEnd && e.id == id)
                    .map(|e| e.t_us.saturating_sub(e.dur_us))
            })?;
        Some((id, start))
    };
    let client_anchor = anchor_of(client, "query.request");
    let server_anchor = anchor_of(server, "http.request");
    let anchored = client_anchor.is_some() && server_anchor.is_some();
    let delta: i128 = match (client_anchor, server_anchor) {
        (Some((_, ct)), Some((_, st))) => ct as i128 - st as i128,
        _ => 0,
    };
    let root_id = server_anchor.map(|(id, _)| id).unwrap_or(0);
    let client_parent = client_anchor.map(|(id, _)| id).unwrap_or(0);
    let thread_offset = client.iter().map(|e| e.thread).max().unwrap_or(0) + 1;
    let mut merged: Vec<snet_obs::Event> = client.to_vec();
    for e in server {
        let mut e = e.clone();
        let original_id = e.id;
        if e.id != 0 {
            e.id += ID_OFFSET;
        }
        if anchored && original_id == root_id {
            e.parent = client_parent;
        } else if e.parent != 0 {
            e.parent += ID_OFFSET;
        }
        e.thread += thread_offset;
        e.t_us = (e.t_us as i128 + delta).max(0) as u64;
        merged.push(e);
    }
    (merged, anchored)
}

/// `bench diff NEW.json [--against OLD.json] [--fail-on-regress PCT]` —
/// compares a fresh bench baseline against a stored one and exits with
/// code 8 when any metric regressed beyond the threshold.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("diff") => cmd_bench_diff(&args[1..]),
        Some(other) => Err(format!("unknown bench subcommand '{other}' (try 'diff')")),
        None => Err("bench requires a subcommand (try 'diff')".into()),
    }
}

fn cmd_bench_diff(args: &[String]) -> Result<(), String> {
    use snet_obs::baseline;
    let new_path = args.first().ok_or("bench diff requires NEW.json")?;
    let new = baseline::Baseline::load(std::path::Path::new(new_path))?;
    let against = match flag(args, "--against") {
        Some(p) => p.to_string(),
        // Default reference: the committed seed baseline for this scenario.
        None => format!("results/baselines/{}.json", new.name),
    };
    let old = baseline::Baseline::load(std::path::Path::new(&against))?;
    let fail_pct: f64 =
        parse(flag(args, "--fail-on-regress").unwrap_or("10"), "--fail-on-regress")?;
    if old.name != new.name {
        eprintln!("bench diff: comparing different scenarios ('{}' vs '{}')", old.name, new.name);
    }
    let d = baseline::diff(&old, &new, fail_pct);
    print!("{}", baseline::render_diff(&old, &new, &d));
    if !d.regressions().is_empty() {
        exit_flushed(exit::BENCH_REGRESS);
    }
    Ok(())
}

fn cmd_closure(args: &[String]) -> Result<(), String> {
    let n: usize = parse(flag(args, "--n").ok_or("closure requires --n")?, "--n")?;
    let rho_name = flag(args, "--rho").unwrap_or("shuffle");
    let rho = match rho_name {
        "shuffle" => Permutation::shuffle(n),
        "unshuffle" => Permutation::unshuffle(n),
        "identity" => Permutation::identity(n),
        "bit-reversal" => Permutation::bit_reversal(n),
        "random" => {
            let seed: u64 = parse(flag(args, "--seed").unwrap_or("0"), "--seed")?;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Permutation::random(n, &mut rng)
        }
        other => return Err(format!("unknown --rho {other}")),
    };
    match snet_topology::mixing::comparison_closure_depth(&rho, 8 * n) {
        Some(t) => {
            println!("ρ = {rho_name}: comparison closure completes at stage {t}");
            println!("⇒ any sorting network based on ρ needs depth ≥ {t}");
        }
        None => {
            println!("ρ = {rho_name}: closure never completes");
            println!("⇒ NO sorting network based on ρ exists at any depth");
            exit_flushed(exit::CLOSURE_IMPOSSIBLE);
        }
    }
    Ok(())
}

fn cmd_duel(args: &[String]) -> Result<(), String> {
    use snet_adversary::adaptive::AdaptiveRun;
    use snet_core::element::ElementKind;
    use std::io::BufRead;
    let n: usize = parse(flag(args, "--n").ok_or("duel requires --n")?, "--n")?;
    let l = n.trailing_zeros() as usize;
    let k: usize = parse(flag(args, "--k").unwrap_or(&l.to_string()), "--k")?;
    println!(
        "adaptive duel on n = {n}: enter one stage per line as {} ops from {{+,-,0,1}} \
         (e.g. '++-0'), blank line or EOF to finish",
        n / 2
    );
    let mut run = AdaptiveRun::new(n, k);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        if line.len() != n / 2 {
            return Err(format!("stage needs exactly {} ops, got {}", n / 2, line.len()));
        }
        let ops: Result<Vec<ElementKind>, String> = line
            .chars()
            .map(|c| ElementKind::from_symbol(c).ok_or(format!("bad op '{c}'")))
            .collect();
        let outcomes = run.submit_stage(&ops?);
        let summary: String =
            outcomes.iter().map(|o| if o.first_smaller { '<' } else { '>' }).collect();
        println!("outcomes: {summary}");
    }
    let out = run.finish();
    println!("surviving |D| = {}", out.d_set.len());
    match out.refutation {
        Some(r) => {
            println!(
                "adversary wins: values {} and {} never compared; unsorted witness {:?}",
                r.m,
                r.m + 1,
                r.unsorted_witness()
            );
        }
        None => println!("builder survives: |D| < 2 (network may sort)"),
    }
    Ok(())
}

fn cmd_certify(args: &[String]) -> Result<(), String> {
    use snet_adversary::LowerBoundCertificate;
    let path = args.first().ok_or("certify requires FILE")?;
    let out_path = flag(args, "-o").ok_or("certify requires -o CERT")?;
    let doc = NetworkFile::load(path)?;
    let ird = doc.as_ird().ok_or("certify needs a shuffle-based or IRD file")?;
    let l = ird.wires().trailing_zeros() as usize;
    let k: usize = parse(flag(args, "--k").unwrap_or(&l.to_string()), "--k")?;
    let run = theorem41(&ird, k);
    if run.d_set.len() < 2 {
        println!("adversary exhausted (|D| = {}): nothing to certify", run.d_set.len());
        exit_flushed(exit::ADVERSARY_EXHAUSTED);
    }
    let net = ird.to_network();
    let cert = LowerBoundCertificate::from_run(&net, &run)?;
    if let Some(store) = resolve_store(args)? {
        let verdict = cert.to_verdict();
        store
            .put_verdict(&verdict)
            .map_err(|e| format!("cannot write witness verdict to store: {e}"))?;
        println!("store: witness verdict cached under {}", verdict.hash);
    }
    std::fs::write(out_path, serde_json::to_string_pretty(&cert).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    println!(
        "certificate written to {out_path}: |D| = {} uncompared wires, witness values {} and {}",
        cert.d_set.len(),
        cert.witness.m,
        cert.witness.m + 1
    );
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    use snet_adversary::LowerBoundCertificate;
    let path = args.first().ok_or("audit requires CERT")?;
    let samples: usize = parse(flag(args, "--samples").unwrap_or("300"), "--samples")?;
    let seed: u64 = parse(flag(args, "--seed").unwrap_or("0"), "--seed")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let cert: LowerBoundCertificate =
        serde_json::from_str(&text).map_err(|e| format!("parse: {e}"))?;
    let n = cert.network.wires();
    let result = if n <= 8 {
        println!("n = {n}: running the exhaustive check");
        cert.check_exhaustive()
    } else {
        println!("n = {n}: running the sampled check ({samples} refinements, seed {seed})");
        cert.check(samples, seed)
    };
    match result {
        Ok(()) => {
            println!("certificate VALID: the network is not a sorting network");
            Ok(())
        }
        Err(e) => {
            eprintln!("certificate REJECTED: {e}");
            exit_flushed(exit::CERTIFICATE_REJECTED);
        }
    }
}

/// `snetctl store` — inspect and maintain the content-addressed artifact
/// store: `ls` (entries), `get HASH` (print a stored verdict), `stat`
/// (aggregate numbers), `gc --max-bytes N` (evict oldest generations).
/// The store comes from `--store DIR` or `SNET_STORE`. `get` exits with
/// code 10 when the requested entry exists but is corrupt.
fn cmd_store(args: &[String]) -> Result<(), String> {
    let store = resolve_store(args)?
        .ok_or("store commands need --store DIR or the SNET_STORE environment variable")?;
    match args.first().map(String::as_str) {
        Some("ls") => {
            let entries = store.ls().map_err(|e| e.to_string())?;
            println!("{:<16} {:<10} {:>10} {:>10}  summary", "hash", "kind", "gen", "bytes");
            for e in &entries {
                let summary = match e.kind.as_str() {
                    snet_store::KIND_VERDICT => store
                        .get_verdict(&e.hash)
                        .map(|(v, _)| v.summary())
                        .unwrap_or_else(|| "(unreadable)".into()),
                    snet_store::KIND_TT_FACTS => store
                        .get(&e.hash)
                        .and_then(|entry| snet_store::TtFacts::decode(&entry.payload).ok())
                        .map(|f| format!("{} transposition facts", f.len()))
                        .unwrap_or_else(|| "(unreadable)".into()),
                    _ => String::new(),
                };
                println!(
                    "{:<16} {:<10} {:>10} {:>10}  {summary}",
                    &e.hash.to_hex()[..16],
                    e.kind,
                    e.generation,
                    e.bytes
                );
            }
            println!("{} entries", entries.len());
            Ok(())
        }
        Some("get") => {
            let hex = args.get(1).ok_or("store get requires HASH")?;
            let hash = resolve_hash(&store, hex)?;
            let existed = store.contains(&hash);
            match store.get(&hash) {
                Some(entry) => {
                    match String::from_utf8(entry.payload) {
                        Ok(text) => println!("{text}"),
                        Err(e) => {
                            // Binary payloads (TT spills) are not for stdout.
                            println!(
                                "(binary {} payload, {} bytes)",
                                entry.kind,
                                e.as_bytes().len()
                            );
                        }
                    }
                    Ok(())
                }
                None if existed => {
                    eprintln!("entry {hash} is corrupt (quarantined)");
                    exit_flushed(exit::STORE_CORRUPT);
                }
                None => Err(format!("no entry under {hash}")),
            }
        }
        Some("stat") => {
            let s = store.stat().map_err(|e| e.to_string())?;
            println!("root        : {}", store.root().display());
            println!("generation  : {}", s.generation);
            println!("entries     : {}", s.entries);
            println!("  verdicts  : {}", s.verdicts);
            println!("  tt spills : {}", s.tt_spills);
            println!("bytes       : {}", s.bytes);
            println!("quarantined : {}", s.quarantined);
            // Session counters from this process's metrics registry: cache
            // effectiveness without needing a trace file. Zero unless this
            // invocation itself exercised the store (e.g. a future combined
            // command); still printed so the lines are greppable in scripts.
            let hits = snet_obs::registry::counter_value("store.hits").unwrap_or(0.0);
            let misses = snet_obs::registry::counter_value("store.misses").unwrap_or(0.0);
            let session_bytes = snet_obs::registry::counter_value("store.bytes").unwrap_or(0.0);
            let lookups = hits + misses;
            println!("session     : {hits:.0} hits / {misses:.0} misses");
            if lookups > 0.0 {
                println!("  hit rate  : {:.1}%", 100.0 * hits / lookups);
            } else {
                println!("  hit rate  : n/a (no lookups this session)");
            }
            println!("  bytes out : {session_bytes:.0}");
            Ok(())
        }
        Some("gc") => {
            let max: u64 = parse(
                flag(args, "--max-bytes").ok_or("gc requires --max-bytes N")?,
                "--max-bytes",
            )?;
            let r = store.gc(max).map_err(|e| e.to_string())?;
            println!(
                "gc: scanned {}, removed {} ({} bytes freed), {} bytes remain",
                r.scanned, r.removed, r.freed_bytes, r.remaining_bytes
            );
            Ok(())
        }
        _ => Err("store requires a subcommand: ls | get HASH | stat | gc --max-bytes N".into()),
    }
}

/// Resolves a (possibly abbreviated) hex hash against the store: a full
/// 64-char hash parses directly; a unique prefix of a stored entry also
/// works, like git's short object ids.
fn resolve_hash(store: &ArtifactStore, hex: &str) -> Result<snet_core::ir::CanonicalHash, String> {
    if let Some(h) = snet_core::ir::CanonicalHash::from_hex(hex) {
        return Ok(h);
    }
    if hex.len() < 4 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("'{hex}' is not a canonical hash (or a >= 4-char hex prefix)"));
    }
    let entries = store.ls().map_err(|e| e.to_string())?;
    let matches: Vec<_> = entries.iter().filter(|e| e.hash.to_hex().starts_with(hex)).collect();
    match matches.as_slice() {
        [one] => Ok(one.hash),
        [] => Err(format!("no entry matches prefix '{hex}'")),
        many => Err(format!("prefix '{hex}' is ambiguous ({} entries)", many.len())),
    }
}

/// `snetctl count` — drive the live counting-network runtime, or explore
/// its interleavings deterministically with `--explore`. Exit code 9 on
/// any step-property violation; explorer counterexamples are printed as
/// replayable decision strings and recorded in the run manifest.
fn cmd_count(args: &[String]) -> Result<(), String> {
    let width: usize = parse(flag(args, "--width").unwrap_or("8"), "--width")?;
    if !width.is_power_of_two() {
        return Err("--width must be a power of two".into());
    }
    let threads: usize = parse(flag(args, "--threads").unwrap_or("4"), "--threads")?;
    if threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    let kind = flag(args, "--kind").unwrap_or("bitonic");
    let layout = match kind {
        "bitonic" => Layout::bitonic(width),
        "periodic" => Layout::periodic(width),
        other => return Err(format!("unknown --kind '{other}' (bitonic|periodic)")),
    };
    println!(
        "counting network: {kind}, width {width}, {} balancers in {} layers",
        layout.balancer_count(),
        layout.depth()
    );
    if has_flag(args, "--explore") {
        count_explore(args, layout, threads)
    } else {
        count_live(args, layout, threads)
    }
}

/// Live mode: real threads hammer the network, then we inspect the
/// quiescent state and compare throughput against one shared counter.
fn count_live(args: &[String], layout: Layout, threads: usize) -> Result<(), String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let ops: usize = parse(flag(args, "--ops").unwrap_or("4096"), "--ops")?;
    let net = CountingNetwork::new(layout);
    let span = snet_obs::span("count.live")
        .attr("width", net.width())
        .attr("threads", threads)
        .attr("ops", ops);
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..ops {
                    net.traverse();
                }
            });
        }
    });
    let net_elapsed = start.elapsed();
    drop(span);
    net.emit_obs();

    // The structure the counting network is meant to beat: every thread
    // on one cache line.
    let shared = AtomicU64::new(0);
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..ops {
                    shared.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let atomic_elapsed = start.elapsed();

    let total = (threads * ops) as u64;
    let rate = |d: std::time::Duration| total as f64 / d.as_secs_f64().max(1e-9);
    println!("traversals      : {total} ({threads} threads × {ops} ops)");
    println!(
        "network         : {:.1} ms, {:.0} ops/s",
        net_elapsed.as_secs_f64() * 1e3,
        rate(net_elapsed)
    );
    println!(
        "single atomic   : {:.1} ms, {:.0} ops/s",
        atomic_elapsed.as_secs_f64() * 1e3,
        rate(atomic_elapsed)
    );
    println!("slot counts     : {:?}", net.slot_counts());
    if net.total() != total {
        return Err(format!("lost traversals: {} slots vs {total} issued", net.total()));
    }
    match net.check_step() {
        Ok(()) => {
            println!("step property   : ok");
            Ok(())
        }
        Err(v) => {
            eprintln!("step property   : {v}");
            let mut manifest = snet_obs::RunManifest::capture("snetctl-count");
            manifest.push_extra("violation", v.to_string());
            manifest.emit();
            exit_flushed(exit::STEP_VIOLATION);
        }
    }
}

/// Explorer mode: deterministic virtual-thread schedules, exhaustive with
/// `--exhaustive` (small configurations only), seeded sampling otherwise.
fn count_explore(args: &[String], layout: Layout, threads: usize) -> Result<(), String> {
    let ops: usize = parse(flag(args, "--ops").unwrap_or("1"), "--ops")?;
    let seed: u64 = parse(flag(args, "--seed").unwrap_or("0"), "--seed")?;
    let schedules: u64 = parse(flag(args, "--schedules").unwrap_or("1000"), "--schedules")?;
    if threads > 62 {
        return Err("--explore supports at most 62 virtual threads".into());
    }
    let explorer = Explorer::new(layout.clone(), threads, ops, BalancerModel::Atomic);
    let _span = snet_obs::span("count.explore")
        .attr("width", layout.width())
        .attr("threads", threads)
        .attr("ops", ops);
    let report = if has_flag(args, "--exhaustive") {
        // Schedule count is multinomial in total steps; keep it in the
        // millions, not the billions.
        let steps = threads * ops * (layout.depth() + 1);
        if steps > 26 {
            return Err(format!(
                "exhaustive exploration of {steps} total steps is intractable; \
                 lower --threads/--ops/--width or use seeded sampling"
            ));
        }
        println!("exploring all interleavings of {threads} virtual threads × {ops} ops…");
        explorer.explore()
    } else {
        println!("sampling {schedules} schedules (seed {seed})…");
        explorer.sample(seed, schedules)
    };
    snet_obs::counter("sched.schedules", report.schedules);
    snet_obs::counter("sched.failing", report.failing);
    println!("schedules       : {}", report.schedules);
    if report.failing == 0 {
        println!("step property   : ok in every explored schedule");
        return Ok(());
    }
    eprintln!("step property   : VIOLATED in {} schedules", report.failing);
    let mut manifest = snet_obs::RunManifest::capture("snetctl-count");
    manifest.push_extra("seed", seed.to_string());
    for (i, v) in report.violations.iter().enumerate() {
        eprintln!("  schedule '{}': {}", v.decisions, v.detail);
        manifest.push_extra(format!("failing_schedule_{i}"), v.decisions.clone());
    }
    manifest.emit();
    exit_flushed(exit::STEP_VIOLATION);
}
