//! End-to-end tests of the `snetctl` binary: every subcommand, exercised
//! through the real executable.

use std::process::{Command, Output};

fn snetctl(args: &[&str]) -> Output {
    // Hermetic: an ambient SNET_STORE would add cache traffic (extra
    // `store:` lines, replayed verdicts) to exact-output assertions.
    // Store behaviour is covered by tests that pass --store explicitly.
    Command::new(env!("CARGO_BIN_EXE_snetctl"))
        .env_remove("SNET_STORE")
        .args(args)
        .output()
        .expect("snetctl should launch")
}

fn tmpfile(name: &str) -> String {
    let dir = std::env::temp_dir().join("snetctl-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

#[test]
fn help_prints_usage() {
    let out = snetctl(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("snetctl"));
}

#[test]
fn unknown_command_fails() {
    let out = snetctl(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_info_check_roundtrip_bitonic() {
    let f = tmpfile("bitonic16.json");
    let out = snetctl(&["gen", "--kind", "bitonic", "--n", "16", "-o", &f]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = snetctl(&["info", &f]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("shuffle-based"));
    assert!(text.contains("comparator depth: 10"));

    let out = snetctl(&["check", &f, "--exhaustive"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sorted all 65536"));
}

#[test]
fn check_finds_counterexample_on_brick_prefix() {
    // A non-sorting circuit: the empty check via random trials must exit 3.
    let f = tmpfile("shallow.json");
    let out = snetctl(&[
        "gen",
        "--kind",
        "random-shuffle",
        "--n",
        "16",
        "--depth",
        "3",
        "--seed",
        "5",
        "-o",
        &f,
    ]);
    assert!(out.status.success());
    let out = snetctl(&["check", &f, "--trials", "500", "--seed", "1"]);
    assert_eq!(out.status.code(), Some(3), "expected counterexample exit code");
    assert!(String::from_utf8_lossy(&out.stdout).contains("NOT a sorting network"));
}

#[test]
fn refute_and_verify_witness() {
    let f = tmpfile("unit.json");
    let w = tmpfile("witness.json");
    let out = snetctl(&[
        "gen",
        "--kind",
        "random-shuffle",
        "--n",
        "32",
        "--depth",
        "10",
        "--seed",
        "9",
        "-o",
        &f,
    ]);
    assert!(out.status.success());
    let out = snetctl(&["refute", &f, "-o", &w]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("refuted"));

    let out = snetctl(&["verify", &f, &w]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("witness verified"));

    // Tamper with the witness: verification must reject it.
    let text = std::fs::read_to_string(&w).unwrap();
    let tampered = text.replacen("\"m\":", "\"m\": 99, \"_orig_m\":", 1);
    let w2 = tmpfile("witness_bad.json");
    std::fs::write(&w2, tampered).unwrap();
    let out = snetctl(&["verify", &f, &w2]);
    assert!(!out.status.success());
}

#[test]
fn refute_rejects_circuit_files() {
    let f = tmpfile("oddeven.json");
    snetctl(&["gen", "--kind", "odd-even", "--n", "8", "-o", &f]);
    let out = snetctl(&["refute", &f]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("shuffle-based"));
}

#[test]
fn refute_exhausted_on_full_sorter() {
    let f = tmpfile("bitonic8.json");
    snetctl(&["gen", "--kind", "bitonic", "--n", "8", "-o", &f]);
    let out = snetctl(&["refute", &f]);
    assert_eq!(out.status.code(), Some(4), "full sorter: adversary exhausted");
}

#[test]
fn route_random_and_explicit() {
    let out = snetctl(&["route", "--n", "16", "--seed", "2"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("realized    : true"));

    let out = snetctl(&["route", "--n", "4", "--perm", "2,0,3,1"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("realized    : true"));

    let out = snetctl(&["route", "--n", "4", "--perm", "0,0,1,2"]);
    assert!(!out.status.success(), "non-bijection must be rejected");
}

#[test]
fn render_small_network() {
    let f = tmpfile("brick4.json");
    snetctl(&["gen", "--kind", "brick", "--n", "4", "-o", &f]);
    let out = snetctl(&["render", &f]);
    assert!(out.status.success());
    let art = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(art.lines().count(), 4);
    assert!(art.contains('m'));
}

#[test]
fn corrupt_file_is_rejected_cleanly() {
    let f = tmpfile("corrupt.json");
    std::fs::write(&f, "{\"type\": \"circuit\", \"network\": {\"n\": 2, \"levels\": [{\"route\": null, \"elements\": [{\"a\":0,\"b\":0,\"kind\":\"Cmp\"}]}]}}").unwrap();
    let out = snetctl(&["info", &f]);
    assert!(!out.status.success(), "self-loop element must fail validation on load");
}

#[test]
fn refute_explain_prints_proof_log() {
    let f = tmpfile("unit2.json");
    snetctl(&[
        "gen",
        "--kind",
        "random-shuffle",
        "--n",
        "16",
        "--depth",
        "8",
        "--seed",
        "3",
        "-o",
        &f,
    ]);
    let out = snetctl(&["refute", &f, "--explain"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("Theorem 4.1 adversary run"));
    assert!(text.contains("kept set M_"));
}

#[test]
fn ird_files_roundtrip_and_refute() {
    let f = tmpfile("ird.json");
    let w = tmpfile("ird_witness.json");
    let out = snetctl(&[
        "gen",
        "--kind",
        "random-ird",
        "--n",
        "32",
        "--blocks",
        "2",
        "--seed",
        "11",
        "-o",
        &f,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = snetctl(&["info", &f]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("iterated reverse delta"));
    let out = snetctl(&["refute", &f, "-o", &w]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = snetctl(&["verify", &f, &w]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn corrupt_ird_rejected() {
    // A gamma element that does not cross the two subnetworks.
    let f = tmpfile("bad_ird.json");
    std::fs::write(
        &f,
        r#"{"type":"ird","network":{"blocks":[{"pre_route":null,
      "rdn":[[0,1,[]],[2,3,[]],[{"a":0,"b":1,"kind":"Cmp"}]]}],"post_route":null}}"#,
    )
    .unwrap();
    let out = snetctl(&["info", &f]);
    assert!(!out.status.success(), "non-crossing gamma must be rejected on load");
}

#[test]
fn render_svg_and_dot() {
    let f = tmpfile("bitonic8_render.json");
    snetctl(&["gen", "--kind", "bitonic", "--n", "8", "-o", &f]);
    let out = snetctl(&["render", &f, "--svg"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("<svg"));
    let out = snetctl(&["render", &f, "--dot"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));
}

#[test]
fn stats_reports_metrics() {
    let f = tmpfile("bitonic16_stats.json");
    snetctl(&["gen", "--kind", "bitonic", "--n", "16", "-o", &f]);
    let out = snetctl(&["stats", &f, "--trials", "50"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("fraction sorted   : 1.0000"));
    assert!(text.contains("settle depth"));
}

#[test]
fn closure_detects_impossible_permutations() {
    let out = snetctl(&["closure", "--n", "16", "--rho", "shuffle"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("depth ≥ 4"));
    let out = snetctl(&["closure", "--n", "16", "--rho", "identity"]);
    assert_eq!(out.status.code(), Some(5));
    assert!(String::from_utf8_lossy(&out.stdout).contains("NO sorting network"));
}

#[test]
fn duel_plays_on_stdin() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_snetctl"))
        .args(["duel", "--n", "8"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        // Two stages of all-+ then quit.
        writeln!(stdin, "++++").unwrap();
        writeln!(stdin, "++++").unwrap();
        writeln!(stdin).unwrap();
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("outcomes:"));
    assert!(text.contains("adversary wins"), "{text}");
}

#[test]
fn duel_rejects_malformed_stage() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_snetctl"))
        .args(["duel", "--n", "8"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"++\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn certify_and_audit_roundtrip() {
    let f = tmpfile("cert_net.json");
    let c = tmpfile("cert.json");
    snetctl(&[
        "gen",
        "--kind",
        "random-shuffle",
        "--n",
        "32",
        "--depth",
        "10",
        "--seed",
        "21",
        "-o",
        &f,
    ]);
    let out = snetctl(&["certify", &f, "-o", &c]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = snetctl(&["audit", &c, "--samples", "100"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("certificate VALID"));

    // Tamper: flip a pattern tag.
    let text = std::fs::read_to_string(&c).unwrap();
    let tampered = text.replacen("\"pattern_tags\": [", "\"pattern_tags\": [1, 1, 1,", 1);
    let c2 = tmpfile("cert_bad.json");
    std::fs::write(&c2, tampered).unwrap();
    let out = snetctl(&["audit", &c2]);
    assert!(!out.status.success());
}

#[test]
fn certify_full_sorter_exits_gracefully() {
    let f = tmpfile("cert_bitonic.json");
    let c = tmpfile("cert_none.json");
    snetctl(&["gen", "--kind", "bitonic", "--n", "8", "-o", &f]);
    let out = snetctl(&["certify", &f, "-o", &c]);
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn trace_out_writes_jsonl_and_report_reconstructs_spans() {
    let f = tmpfile("bitonic16_trace.json");
    let t = tmpfile("trace.jsonl");
    snetctl(&["gen", "--kind", "bitonic", "--n", "16", "-o", &f]);
    let out = snetctl(&["check", &f, "--exhaustive", "--progress", "--trace-out", &t]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("sorted all 65536"));
    // The progress meter draws on stderr.
    assert!(String::from_utf8_lossy(&out.stderr).contains("check.zero_one"));

    // The trace file leads with the manifest and contains the span events.
    let trace = std::fs::read_to_string(&t).unwrap();
    let first = trace.lines().next().unwrap();
    assert!(first.contains("\"type\":\"manifest\""), "manifest first: {first}");
    assert!(trace.contains("\"name\":\"ir.compile\""));
    assert!(trace.contains("\"name\":\"check.zero_one\""));

    // `report` reconstructs the tree: compile + passes + check with
    // counters, headed by the manifest.
    let out = snetctl(&["report", &t]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("run manifest"));
    assert!(text.contains("tool"));
    assert!(text.contains("ir.compile"));
    assert!(text.contains("ir.pass"));
    assert!(text.contains("check.zero_one"));
    assert!(text.contains("check.inputs"));
    // Pass spans are indented under the compile span.
    let compile_indent = text.lines().find(|l| l.contains("ir.compile")).unwrap();
    let pass_indent = text.lines().find(|l| l.contains("ir.pass")).unwrap();
    let lead = |s: &str| s.len() - s.trim_start().len();
    assert!(lead(pass_indent) > lead(compile_indent), "pass nests under compile");
}

#[test]
fn trace_flags_are_global_and_stripped() {
    // --trace-out before the subcommand and --progress after: both must be
    // accepted and not confuse subcommand parsing.
    let f = tmpfile("brick8_trace.json");
    let t = tmpfile("trace_global.jsonl");
    snetctl(&["gen", "--kind", "brick", "--n", "8", "-o", &f]);
    let out = snetctl(&["--trace-out", &t, "check", &f, "--exhaustive", "--progress"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(std::fs::read_to_string(&t).unwrap().contains("check.zero_one"));
    // A missing value for --trace-out errors out cleanly.
    let out = snetctl(&["check", &f, "--trace-out"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires a value"));
}

#[test]
fn report_rejects_missing_and_garbage_files() {
    let out = snetctl(&["report", "/nonexistent/trace.jsonl"]);
    assert!(!out.status.success());
    let g = tmpfile("garbage.jsonl");
    std::fs::write(&g, "this is not json\n").unwrap();
    let out = snetctl(&["report", &g]);
    assert!(!out.status.success());
}

#[test]
fn refute_recognizes_circuit_files_in_the_class() {
    // A periodic-balanced block is a reverse delta network in disguise;
    // stored as a plain circuit it must still be refutable via recognition.
    let f = tmpfile("periodic16.json");
    snetctl(&["gen", "--kind", "periodic", "--n", "16", "-o", &f]);
    // The FULL sorter exhausts the adversary (exit 4)…
    let out = snetctl(&["refute", &f]);
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));
    // …while odd-even (genuinely outside the class) still reports no
    // structure.
    let g = tmpfile("oddeven16.json");
    snetctl(&["gen", "--kind", "odd-even", "--n", "16", "-o", &g]);
    let out = snetctl(&["refute", &g]);
    assert!(!out.status.success());
}

/// Like [`snetctl`] but with `SNET_THREADS` pinned, for determinism tests.
fn snetctl_threads(args: &[&str], threads: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_snetctl"))
        .env_remove("SNET_STORE")
        .args(args)
        .env("SNET_THREADS", threads)
        .output()
        .expect("snetctl should launch")
}

#[test]
fn search_finds_known_optimum_and_emits_verified_network() {
    let f = tmpfile("optimal5.json");
    let fr = tmpfile("frontier5.json");
    let out = snetctl(&["search", "--n", "5", "-o", &f, "--frontier-out", &fr]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("adversary floor = 3"), "{text}");
    assert!(text.contains("optimal depth: 5 ("), "{text}");
    assert!(text.contains("verified: sharded 0-1 check passed"), "{text}");
    // The emitted witness is a real sorting network.
    let out = snetctl(&["check", &f, "--exhaustive"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sorted all 32"));
    // The frontier document carries the schema and the embedded manifest.
    let frontier = std::fs::read_to_string(&fr).unwrap();
    assert!(frontier.contains("\"schema\": \"snet-search-frontier/2\""), "{frontier}");
    assert!(frontier.contains("\"manifest\""));
    assert!(frontier.contains("\"optimal_depth\": 5"));
}

#[test]
fn search_is_thread_count_independent() {
    // Same -o path both times so stdout (which echoes it) is comparable
    // byte for byte; the acceptance bar for the parallel frontier.
    let f = tmpfile("optimal6_det.json");
    let a = snetctl_threads(&["search", "--n", "6", "-o", &f], "1");
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let net_a = std::fs::read(&f).unwrap();
    let b = snetctl_threads(&["search", "--n", "6", "-o", &f], "8");
    assert!(b.status.success(), "{}", String::from_utf8_lossy(&b.stderr));
    let net_b = std::fs::read(&f).unwrap();
    assert_eq!(a.stdout, b.stdout, "stdout must be byte-identical across thread counts");
    assert_eq!(net_a, net_b, "emitted network must be byte-identical across thread counts");
    assert!(String::from_utf8_lossy(&a.stdout).contains("optimal depth: 5 ("));
}

#[test]
fn search_reports_refutation_when_ceiling_is_too_low() {
    let out = snetctl(&["search", "--n", "4", "--max-depth", "2"]);
    assert_eq!(out.status.code(), Some(7), "refuted ceiling has its own exit code");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("depth  2: refuted"), "{text}");
    assert!(text.contains("no sorting network on 4 wires within depth 2"), "{text}");
}

#[test]
fn search_shuffle_legal_emits_a_shuffle_file() {
    let f = tmpfile("shuffle4.json");
    let out = snetctl(&["search", "--n", "4", "--shuffle-legal", "-o", &f]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("mode = shuffle-legal"));
    // The witness file round-trips as a shuffle-based document…
    let out = snetctl(&["info", &f]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("shuffle-based"));
    // …and sorts.
    let out = snetctl(&["check", &f, "--exhaustive"]);
    assert!(out.status.success());
    // Non-power-of-two widths are rejected up front in this mode.
    let out = snetctl(&["search", "--n", "6", "--shuffle-legal"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("power of two"));
}

#[test]
fn gen_randomized_is_seed_reproducible() {
    let a = tmpfile("rand_a.json");
    let b = tmpfile("rand_b.json");
    let c = tmpfile("rand_c.json");
    for (path, seed) in [(&a, "9"), (&b, "9"), (&c, "10")] {
        let out =
            snetctl(&["gen", "--kind", "randomized", "--n", "16", "--seed", seed, "-o", path]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let (da, db, dc) =
        (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap(), std::fs::read(&c).unwrap());
    assert_eq!(da, db, "same seed, same sampled network, byte for byte");
    assert_ne!(da, dc, "different seed must resample the randomizing prefix");
}

#[test]
fn seed_is_threaded_into_the_run_manifest() {
    let f = tmpfile("rand_traced.json");
    let tr = tmpfile("rand_trace.jsonl");
    let out = snetctl(&[
        "gen",
        "--kind",
        "randomized",
        "--n",
        "16",
        "--seed",
        "41",
        "-o",
        &f,
        "--trace-out",
        &tr,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let trace = std::fs::read_to_string(&tr).unwrap();
    let manifest_line =
        trace.lines().find(|l| l.contains("run.manifest")).expect("manifest leads the trace");
    assert!(manifest_line.contains("\"seed\":\"41\""), "{manifest_line}");
}

#[test]
fn search_stats_reports_prune_breakdown_and_tt_hit_rate() {
    let out = snetctl_threads(&["search", "--n", "6", "--stats"], "2");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("optimal depth: 5"), "{text}");
    assert!(text.contains("prune breakdown (vs nodes)"), "{text}");
    assert!(text.contains("hit rate"), "{text}");

    // The breakdown carries live counters, not a table of zeros: at
    // n = 6 the TT must field probes and at least one prune kind fires.
    let row_count = |label: &str| -> u64 {
        let line = text.lines().find(|l| l.trim_start().starts_with(label)).unwrap_or_else(|| {
            panic!("row {label:?} missing from:\n{text}");
        });
        line.split_whitespace()
            .find_map(|w| w.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("no count in {line:?}"))
    };
    assert!(row_count("transposition hits") > 0, "{text}");
    assert!(row_count("probes") > 0, "{text}");
    let hit_rate_line = text.lines().find(|l| l.trim_start().starts_with("hit rate")).unwrap();
    assert!(!hit_rate_line.contains(" 0.0%"), "nonzero hit rate: {hit_rate_line}");
    // Percentages annotate every breakdown row; histograms show samples.
    assert!(text.contains('%'), "{text}");
    assert!(text.contains("task nodes"), "{text}");
    assert!(text.contains("worker"), "per-worker balance table: {text}");
}

#[test]
fn report_chrome_exports_valid_trace_event_json() {
    let t = tmpfile("chrome_src.jsonl");
    let c = tmpfile("chrome_out.json");
    let out = snetctl_threads(&["search", "--n", "6", "--trace-out", &t, "--stats"], "2");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = snetctl(&["report", &t, "--chrome", &c]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("chrome trace written"));

    // The export must be well-formed trace-event JSON that a real
    // JSON parser accepts, not just our own reader.
    let json = std::fs::read_to_string(&c).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&json).expect("chrome export parses");
    fn field<'a>(v: &'a serde_json::Value, key: &str) -> Option<&'a serde_json::Value> {
        v.get(key)
    }
    fn fstr<'a>(v: &'a serde_json::Value, key: &str) -> &'a str {
        field(v, key).and_then(|f| f.as_str()).unwrap_or("")
    }
    let events = field(&doc, "traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    assert!(!events.is_empty());

    // Duration events for the search spans, with microsecond timestamps.
    let complete: Vec<_> = events.iter().filter(|e| fstr(e, "ph") == "X").collect();
    assert!(
        complete.iter().any(|e| fstr(e, "name") == "search.run"),
        "search.run becomes a duration event"
    );
    assert!(complete.iter().any(|e| fstr(e, "name") == "search.worker"));
    for e in &complete {
        assert!(field(e, "ts").and_then(|v| v.as_f64()).is_some(), "ts missing");
        assert!(field(e, "dur").and_then(|v| v.as_f64()).is_some(), "dur missing");
    }
    // Counter tracks for the node/prune counters.
    assert!(
        events.iter().any(|e| fstr(e, "ph") == "C" && fstr(e, "name") == "search.nodes"),
        "counter track present"
    );
    // Metadata names the process and gives every worker its own lane.
    let meta_name = |e: &serde_json::Value| {
        field(e, "args").map(|a| fstr(a, "name").to_string()).unwrap_or_default()
    };
    let thread_names: Vec<String> = events
        .iter()
        .filter(|e| fstr(e, "ph") == "M" && fstr(e, "name") == "thread_name")
        .map(meta_name)
        .collect();
    assert!(thread_names.iter().any(|n| n == "main"), "{thread_names:?}");
    // Worker lanes carry stable logical names: `search-worker-<slot>`,
    // not per-OS-thread ordinals that change round to round.
    assert!(thread_names.iter().any(|n| n == "search-worker-0"), "{thread_names:?}");
    assert!(thread_names.iter().any(|n| n == "search-worker-1"), "{thread_names:?}");
    assert!(thread_names.iter().all(|n| !n.starts_with("worker-")), "{thread_names:?}");
    assert!(
        events.iter().any(|e| fstr(e, "ph") == "M"
            && fstr(e, "name") == "process_name"
            && meta_name(e) == "snetctl"),
        "process lane is named after the tool"
    );
}

/// A hand-written baseline file: the same shape `Baseline::save` emits,
/// which keeps this test honest about the on-disk format.
fn write_baseline_file(name: &str, file: &str, states_per_sec: f64, wall_ms: f64) -> String {
    let path = tmpfile(file);
    let text = format!(
        "{{\n  \"schema\": \"snet-bench-baseline/1\",\n  \"name\": \"{name}\",\n  \
         \"manifest\": {{\n    \"tool\": \"cli-test\",\n    \"threads\": \"2\"\n  }},\n  \
         \"metrics\": {{\n    \"states_per_sec\": {states_per_sec},\n    \
         \"wall_ms\": {wall_ms}\n  }}\n}}\n"
    );
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn bench_diff_passes_clean_and_fails_injected_regression() {
    let old = write_baseline_file("search_n6", "base_old.json", 1_000_000.0, 120.0);

    // A re-run within noise: small moves in the good direction pass.
    let fresh = write_baseline_file("search_n6", "base_fresh.json", 1_020_000.0, 118.0);
    let out = snetctl(&["bench", "diff", &fresh, "--against", &old, "--fail-on-regress", "10"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("OK:"), "{text}");
    assert!(!text.contains("REGRESSED"), "{text}");

    // Throughput halved: the diff must flag it and exit nonzero.
    let slow = write_baseline_file("search_n6", "base_slow.json", 500_000.0, 240.0);
    let out = snetctl(&["bench", "diff", &slow, "--against", &old, "--fail-on-regress", "10"]);
    assert_eq!(out.status.code(), Some(8), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("REGRESSED"), "{text}");
    assert!(text.contains("states_per_sec"), "{text}");
    assert!(text.contains("FAIL"), "{text}");

    // The same regression under a huge threshold is tolerated.
    let out = snetctl(&["bench", "diff", &slow, "--against", &old, "--fail-on-regress", "150"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn bench_diff_rejects_malformed_baselines() {
    let g = tmpfile("base_garbage.json");
    std::fs::write(&g, "{\"schema\": \"something-else/9\", \"name\": \"x\"}").unwrap();
    let out = snetctl(&["bench", "diff", &g]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));

    let out = snetctl(&["bench", "diff", "/nonexistent/base.json"]);
    assert!(!out.status.success());

    let out = snetctl(&["bench", "frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown bench subcommand"));
}

#[test]
fn count_live_run_reports_step_property() {
    let out = snetctl(&["count", "--width", "4", "--threads", "2", "--ops", "50"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("counting network: bitonic, width 4"));
    assert!(text.contains("step property   : ok"));
    assert!(text.contains("slot counts     : [25, 25, 25, 25]"));
}

#[test]
fn count_exhaustive_exploration_proves_all_schedules() {
    let out = snetctl(&[
        "count",
        "--width",
        "4",
        "--threads",
        "2",
        "--ops",
        "1",
        "--explore",
        "--exhaustive",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("schedules       : 70"), "{text}");
    assert!(text.contains("ok in every explored schedule"));

    // Intractable configurations are refused, not attempted.
    let out = snetctl(&[
        "count",
        "--width",
        "8",
        "--threads",
        "4",
        "--ops",
        "4",
        "--explore",
        "--exhaustive",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("intractable"));
}

#[test]
fn count_sampling_is_seeded_and_traces_carry_runtime_counters() {
    let t = tmpfile("count-trace.jsonl");
    let out = snetctl(&[
        "count",
        "--width",
        "8",
        "--threads",
        "3",
        "--ops",
        "2",
        "--explore",
        "--schedules",
        "100",
        "--seed",
        "9",
        "--kind",
        "periodic",
        "--trace-out",
        &t,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let trace = std::fs::read_to_string(&t).unwrap();
    assert!(trace.contains("sched.schedules"), "explorer emits schedule counters");
    assert!(trace.contains("\"seed\":\"9\""), "manifest pins the sampling seed");

    // Live mode emits the runtime counters and the visit histogram.
    let t = tmpfile("count-live-trace.jsonl");
    let out = snetctl(&["count", "--width", "4", "--ops", "32", "--trace-out", &t]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let trace = std::fs::read_to_string(&t).unwrap();
    assert!(trace.contains("runtime.traversals"));
    assert!(trace.contains("runtime.balancer_ops"));
    assert!(trace.contains("runtime.balancer.visits"));
}

#[test]
fn count_rejects_bad_configurations() {
    let out = snetctl(&["count", "--width", "3"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("power of two"));
    let out = snetctl(&["count", "--width", "4", "--kind", "odd-even"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --kind"));
}

#[test]
fn metrics_out_dump_validates_and_carries_subsystem_series() {
    let m = tmpfile("metrics-search.txt");
    let out = snetctl(&["search", "--n", "6", "--metrics-out", &m]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&m).unwrap();
    assert!(text.contains("# TYPE snet_search_nodes_total counter"), "{text}");
    assert!(text.contains("snet_search_rounds_total"), "{text}");
    assert!(text.contains("# TYPE snet_search_task_nodes histogram"), "{text}");
    assert!(text.contains("snet_process_uptime_seconds"), "{text}");

    // `snetctl metrics FILE` validates the dump and reprints it.
    let out = snetctl(&["metrics", &m]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("snet_search_nodes_total"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("ok ("));

    // A dump with duplicated series must fail validation.
    let broken = format!("{text}{text}");
    std::fs::write(&m, broken).unwrap();
    let out = snetctl(&["metrics", &m]);
    assert!(!out.status.success(), "duplicate series should be rejected");
}

#[test]
fn metrics_snapshot_emits_valid_exposition() {
    let out = snetctl(&["metrics"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("# TYPE snet_process_uptime_seconds gauge"), "{text}");
    assert!(text.contains("snet_process_resident_memory_bytes"), "{text}");
}

#[test]
fn store_stat_reports_session_counters() {
    let dir = tmpfile("stat-session-store");
    let _ = std::fs::remove_dir_all(&dir);
    let out = snetctl(&["store", "stat", "--store", &dir]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("session     : 0 hits / 0 misses"), "{text}");
    assert!(text.contains("hit rate  : n/a"), "{text}");
    assert!(text.contains("bytes out : 0"), "{text}");
}

#[test]
fn injected_panic_dumps_flight_recording_that_report_renders() {
    // The flight recorder is always on; a mid-search panic must leave a
    // flight-<pid>.jsonl in the working directory with the recent event
    // stream, and `report` must render it.
    let dir = std::env::temp_dir().join("snetctl-flight-panic");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_snetctl"))
        .env_remove("SNET_STORE")
        .env("SNET_FAULT_PANIC_AFTER", "50")
        .current_dir(&dir)
        .args(["search", "--n", "6"])
        .output()
        .expect("snetctl should launch");
    assert!(!out.status.success(), "injected fault must abort the run");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("injected fault"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dump = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().and_then(|f| f.to_str()).is_some_and(|f| f.starts_with("flight-")))
        .expect("panic hook must write flight-<pid>.jsonl");
    let lines = std::fs::read_to_string(&dump).unwrap();
    assert!(lines.lines().count() >= 40, "dump should carry the recent event stream");
    let out = snetctl(&["report", dump.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("search.nodes"),
        "the ring should hold recent search counters"
    );
}

#[test]
fn flight_recorder_leaves_no_files_on_clean_exit() {
    let dir = std::env::temp_dir().join("snetctl-flight-clean");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_snetctl"))
        .env_remove("SNET_STORE")
        .current_dir(&dir)
        .args(["search", "--n", "5"])
        .output()
        .expect("snetctl should launch");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()).collect();
    assert!(leftovers.is_empty(), "clean runs must not write flight dumps: {leftovers:?}");
}
