//! A minimal, dependency-free HTTP/1.1 layer for `snetd`.
//!
//! Only the subset the daemon speaks is implemented: request parsing
//! with hard byte limits (oversized headers or bodies are rejected with
//! `413` before the daemon buffers them), fixed-length and chunked
//! responses, and keep-alive with pipelining (the parser consumes
//! exactly one request per call, so back-to-back requests on one socket
//! are answered in order).
//!
//! Everything is synchronous over `std::net::TcpStream`; concurrency is
//! the server's worker pool, not an event loop.

use std::io::{self, BufRead, Write};

/// Default cap on the request head (request line + all headers).
pub const DEFAULT_MAX_HEADER_BYTES: usize = 16 * 1024;
/// Default cap on a request body.
pub const DEFAULT_MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Configurable request size limits; exceeding either is a `413`.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Max bytes of request line + headers (including CRLFs).
    pub max_header_bytes: usize,
    /// Max bytes of request body (`Content-Length` is checked before
    /// the body is read, so an oversized upload is refused, not
    /// buffered).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_header_bytes: DEFAULT_MAX_HEADER_BYTES,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verbatim (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request target verbatim (path, plus query if any).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when there is none).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value under `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of one [`read_request`] call.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was parsed.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// A read timeout fired before the first byte of a request — the
    /// connection is idle; the caller decides whether to keep waiting.
    Idle,
}

/// A malformed or over-limit request, mapped to the response status the
/// server should send before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status to answer with (`400`, `413`, `505`, …).
    pub status: u16,
    /// Human-readable detail for the error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError { status, message: message.into() }
    }
}

/// Reads exactly one request from `r`.
///
/// Timeouts (`WouldBlock`/`TimedOut`) before the first byte surface as
/// [`ReadOutcome::Idle`]; mid-request they are an error (a stalled peer
/// holding half a request does not get to wedge a worker forever).
/// Byte-limit violations surface as `413`, malformed syntax as `400`,
/// and a non-1.1 version as `505`.
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<ReadOutcome, HttpError> {
    // --- head: everything up to the blank line, under the byte cap ---
    let mut head: Vec<u8> = Vec::with_capacity(256);
    loop {
        let byte = match read_one(r) {
            Ok(Some(b)) => b,
            Ok(None) => {
                return if head.is_empty() {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(HttpError::new(400, "connection closed mid-request"))
                };
            }
            Err(e) if is_timeout(&e) => {
                return if head.is_empty() {
                    Ok(ReadOutcome::Idle)
                } else {
                    Err(HttpError::new(408, "timed out mid-request"))
                };
            }
            Err(e) => return Err(HttpError::new(400, format!("read error: {e}"))),
        };
        head.push(byte);
        if head.len() > limits.max_header_bytes {
            return Err(HttpError::new(413, "request head exceeds the byte limit"));
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        // Be lenient about bare-LF clients (curl never sends them, but
        // the parser should not hang on them).
        if head.ends_with(b"\n\n") {
            break;
        }
    }

    let head_text =
        std::str::from_utf8(&head).map_err(|_| HttpError::new(400, "request head is not UTF-8"))?;
    let mut lines = head_text.split("\r\n").flat_map(|l| l.split('\n')).filter(|l| !l.is_empty());
    let request_line = lines.next().ok_or_else(|| HttpError::new(400, "empty request head"))?;

    // --- request line ---
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts.next().ok_or_else(|| HttpError::new(400, "request line lacks a target"))?;
    let version =
        parts.next().ok_or_else(|| HttpError::new(400, "request line lacks a version"))?;
    if parts.next().is_some() {
        return Err(HttpError::new(400, "request line has too many fields"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::new(400, format!("malformed method {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::new(400, format!("malformed target {target:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(505, format!("unsupported version {version:?}")));
    }

    // --- headers ---
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, format!("malformed header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(400, format!("malformed header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // --- body ---
    let mut body = Vec::new();
    if let Some(te) = headers.iter().find(|(k, _)| k == "transfer-encoding").map(|(_, v)| v) {
        // The daemon never needs chunked *uploads*; refusing them keeps
        // the request parser's memory bound provable from Content-Length
        // alone.
        return Err(HttpError::new(
            411,
            format!("transfer-encoding {te:?} not accepted; send a content-length"),
        ));
    }
    if let Some(cl) = headers.iter().find(|(k, _)| k == "content-length").map(|(_, v)| v.clone()) {
        let len: usize = cl
            .parse()
            .map_err(|_| HttpError::new(400, format!("malformed content-length {cl:?}")))?;
        if len > limits.max_body_bytes {
            return Err(HttpError::new(413, "request body exceeds the byte limit"));
        }
        body.resize(len, 0);
        let mut read = 0;
        while read < len {
            match r.read(&mut body[read..]) {
                Ok(0) => return Err(HttpError::new(400, "connection closed mid-body")),
                Ok(n) => read += n,
                Err(e) if is_timeout(&e) => return Err(HttpError::new(408, "timed out mid-body")),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(HttpError::new(400, format!("read error: {e}"))),
            }
        }
    }

    Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        path: target.to_string(),
        headers,
        body,
    }))
}

fn read_one(r: &mut impl BufRead) -> io::Result<Option<u8>> {
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(byte[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Canonical reason phrase for the statuses the daemon sends.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes one fixed-length response (status line, standard headers, any
/// `extra` headers, `Content-Length`, body).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra: &[(&str, &str)],
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", status, status_reason(status))?;
    write!(w, "content-type: {content_type}\r\n")?;
    write!(w, "content-length: {}\r\n", body.len())?;
    for (k, v) in extra {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A chunked-transfer-encoding response in progress; each
/// [`ChunkedWriter::chunk`] flushes immediately so ND-JSON progress
/// frames reach the client as they happen, not at job completion.
pub struct ChunkedWriter<'w, W: Write> {
    w: &'w mut W,
    finished: bool,
}

impl<'w, W: Write> ChunkedWriter<'w, W> {
    /// Writes the response head (with `Transfer-Encoding: chunked`) and
    /// returns the body writer.
    pub fn start(
        w: &'w mut W,
        status: u16,
        content_type: &str,
        extra: &[(&str, &str)],
    ) -> io::Result<ChunkedWriter<'w, W>> {
        write!(w, "HTTP/1.1 {} {}\r\n", status, status_reason(status))?;
        write!(w, "content-type: {content_type}\r\n")?;
        w.write_all(b"transfer-encoding: chunked\r\n")?;
        for (k, v) in extra {
            write!(w, "{k}: {v}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.flush()?;
        Ok(ChunkedWriter { w, finished: false })
    }

    /// Sends one chunk (no-op for empty slices — an empty chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", bytes.len())?;
        self.w.write_all(bytes)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminates the stream (the zero-length chunk).
    pub fn finish(mut self) -> io::Result<()> {
        self.finished = true;
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

impl<W: Write> Drop for ChunkedWriter<'_, W> {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.w.write_all(b"0\r\n\r\n");
            let _ = self.w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<ReadOutcome, HttpError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_get_and_a_post_with_body() {
        let out = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        match out {
            ReadOutcome::Request(r) => {
                assert_eq!(r.method, "GET");
                assert_eq!(r.path, "/healthz");
                assert_eq!(r.header("host"), Some("x"));
                assert!(r.body.is_empty());
            }
            other => panic!("expected request, got {other:?}"),
        }
        let out = parse(b"POST /v1/check HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd").unwrap();
        match out {
            ReadOutcome::Request(r) => assert_eq!(r.body, b"abcd"),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn eof_between_requests_is_clean() {
        assert!(matches!(parse(b"").unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn chunked_writer_emits_wellformed_chunks() {
        let mut out = Vec::new();
        {
            let mut cw = ChunkedWriter::start(&mut out, 200, "application/x-ndjson", &[]).unwrap();
            cw.chunk(b"{\"a\":1}\n").unwrap();
            cw.chunk(b"").unwrap(); // must not terminate the stream
            cw.chunk(b"{\"b\":2}\n").unwrap();
            cw.finish().unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("transfer-encoding: chunked"));
        assert!(text.ends_with("8\r\n{\"a\":1}\n\r\n8\r\n{\"b\":2}\n\r\n0\r\n\r\n"));
    }
}
