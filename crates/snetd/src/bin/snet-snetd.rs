//! The `snet-snetd` daemon binary. Thin flag parsing over
//! [`snet_service::serve`]; exits 11 when the service cannot start
//! (bind failure, bad flags, unopenable store).

use snet_service::{install_signal_handlers, serve, Limits, ServeConfig};

/// Exit code for "the daemon could not start" (mirrors
/// `snetctl`'s exit-code table).
const DAEMON_FAILED: i32 = 11;

const USAGE: &str = "\
usage: snet-snetd [--addr HOST:PORT] [--store DIR] [--conn-threads N]
                  [--max-jobs N] [--search-threads N] [--check-threads N]
                  [--max-body-bytes N]

Serves POST /v1/check, /v1/adversary, /v1/search, GET /v1/jobs/{id},
GET /metrics, GET /healthz. --addr defaults to 127.0.0.1:7421; port 0
picks a free port (printed on startup). SIGTERM drains gracefully.
";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(value: &str, name: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("cannot parse {name} value {value:?}"))
}

fn build_config(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig { addr: "127.0.0.1:7421".into(), ..ServeConfig::default() };
    if let Some(addr) = flag(args, "--addr") {
        cfg.addr = addr;
    }
    if let Some(dir) = flag(args, "--store") {
        cfg.store = Some(std::path::PathBuf::from(dir));
    }
    if let Some(v) = flag(args, "--conn-threads") {
        cfg.conn_threads = parse(&v, "--conn-threads")?;
    }
    if let Some(v) = flag(args, "--max-jobs") {
        cfg.max_jobs = parse(&v, "--max-jobs")?;
    }
    if let Some(v) = flag(args, "--search-threads") {
        cfg.search_threads = parse(&v, "--search-threads")?;
    }
    if let Some(v) = flag(args, "--check-threads") {
        cfg.check_threads = parse(&v, "--check-threads")?;
    }
    if let Some(v) = flag(args, "--max-body-bytes") {
        cfg.limits = Limits { max_body_bytes: parse(&v, "--max-body-bytes")?, ..cfg.limits };
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let cfg = match build_config(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("snetd: {e}");
            eprint!("{USAGE}");
            std::process::exit(DAEMON_FAILED);
        }
    };
    install_signal_handlers();
    if let Err(e) = serve(cfg) {
        eprintln!("snetd: {e}");
        std::process::exit(DAEMON_FAILED);
    }
}
