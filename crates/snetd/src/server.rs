//! The TCP front end: an accept loop feeding a bounded pool of
//! connection workers, request routing, streaming search responses, and
//! a SIGTERM-driven graceful drain.
//!
//! ## Request telemetry
//!
//! Every non-probe exchange runs under `handle_exchange`: the
//! `x-snet-trace` context is extracted (or a fresh one generated — a
//! malformed header degrades, never rejects), an `http.request` span is
//! opened with the trace id attached, the connection thread is routed
//! into a per-request [`RequestTrace`] capture, and on completion the
//! request lands in the RED histograms (`http.request.duration` by
//! endpoint/status/cache), the debug ring (`GET /v1/debug/requests`),
//! the trace store (`GET /v1/trace/{id}`), the JSONL access log, and —
//! past the slow threshold — a `slow-<trace>.jsonl` auto-capture.
//! `/healthz` and `/metrics` probes bypass all of that and tick only
//! their own labeled `http.probe.requests` counter, so scrape traffic
//! never skews the job-path numbers.
//!
//! ## Shutdown
//!
//! `SIGTERM`/`SIGINT` set a process-global flag (the handler does
//! nothing else — it is async-signal-safe). The accept loop notices
//! within one poll interval and stops accepting; the job manager drains
//! (cancelling live jobs, which still spill their search frontiers to
//! the store); connection workers finish their current exchange and
//! exit; buffered observations flush. A drained exit is *clean*: the
//! flight recorder writes nothing.

use crate::http::{
    read_request, write_response, ChunkedWriter, HttpError, Limits, ReadOutcome, Request,
};
use crate::jobs::{ApiError, CheckAnswer, FramePoll, Job, JobManager, JobsConfig};
use crate::telemetry::{
    self, AccessLog, RequestCtx, RequestEntry, RequestRing, RequestTrace, TraceCapture, TraceStore,
    LINK_HEADER,
};
use snet_core::api::{AdversaryRequest, CheckRequest, ErrorBody, SearchRequest, API_SCHEMA};
use snet_obs::tracectx::TraceContext;
use snet_store::ArtifactStore;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const JSON: &str = "application/json";
const NDJSON: &str = "application/x-ndjson";

/// How long a blocked socket read waits before the worker re-checks the
/// shutdown flag; also bounds how stale an idle keep-alive poll can be.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------------
// Signals, without libc: the two handlers the daemon needs, installed
// through the raw C `signal` entry point.
// ---------------------------------------------------------------------------

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one relaxed store, nothing else.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs the SIGTERM/SIGINT handlers that request a graceful drain.
pub fn install_signal_handlers() {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// Requests a process-wide drain programmatically (what the signal
/// handlers do). In-process servers prefer [`ServerHandle::shutdown`],
/// which drains only that server.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// A signal or [`request_shutdown`] drains every server in the process;
/// a [`ServerHandle`]'s own stop flag drains just it (so parallel test
/// harnesses don't tear each other down).
fn stopping(stop: &AtomicBool) -> bool {
    stop.load(Ordering::Relaxed) || SHUTDOWN.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Everything `serve` needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Connection worker threads (concurrent HTTP exchanges).
    pub conn_threads: usize,
    /// Concurrent search jobs.
    pub max_jobs: usize,
    /// Worker threads per search job.
    pub search_threads: usize,
    /// Worker threads per exhaustive check.
    pub check_threads: usize,
    /// Artifact store root (`None` disables caching).
    pub store: Option<std::path::PathBuf>,
    /// Request size limits.
    pub limits: Limits,
    /// JSONL access-log path (`None` disables the log).
    pub access_log: Option<std::path::PathBuf>,
    /// Requests at least this slow auto-dump their captured trace to
    /// `slow-<trace>.jsonl` (`None` disables slow capture).
    pub slow_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            conn_threads: 4,
            max_jobs: 2,
            search_threads: 1,
            check_threads: 1,
            store: None,
            limits: Limits::default(),
            access_log: None,
            slow_ms: None,
        }
    }
}

/// A running daemon, for in-process harnesses: the bound address, the
/// server's own stop flag, and the join handle of the serve loop.
pub struct ServerHandle {
    /// The actual bound address (resolves `:0`).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Requests a graceful drain of this server only and waits for it.
    pub fn shutdown(self) -> std::io::Result<()> {
        self.stop.store(true, Ordering::Relaxed);
        self.join()
    }

    /// Waits for the serve loop to drain and exit.
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().unwrap_or_else(|_| Err(std::io::Error::other("serve loop panicked")))
    }
}

/// Binds and spawns the serve loop on a background thread, returning
/// once the listener is live. The loop exits on
/// [`ServerHandle::shutdown`], [`request_shutdown`], or a signal (when
/// handlers are installed).
pub fn spawn(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let loop_stop = stop.clone();
    let thread = std::thread::Builder::new()
        .name("snetd-accept".into())
        .spawn(move || serve_on(listener, cfg, loop_stop))?;
    Ok(ServerHandle { addr, stop, thread })
}

/// Binds and runs the serve loop on the calling thread (the binary's
/// entry point); only a signal (or [`request_shutdown`]) ends it.
pub fn serve(cfg: ServeConfig) -> std::io::Result<()> {
    let listener = TcpListener::bind(&cfg.addr)?;
    eprintln!("snetd: listening on {}", listener.local_addr()?);
    serve_on(listener, cfg, Arc::new(AtomicBool::new(false)))
}

/// Service-wide telemetry shared by every connection worker.
struct Telemetry {
    capture: Arc<TraceCapture>,
    ring: RequestRing,
    traces: TraceStore,
    access: Option<AccessLog>,
    slow_us: Option<u64>,
    in_flight: AtomicI64,
}

fn serve_on(listener: TcpListener, cfg: ServeConfig, stop: Arc<AtomicBool>) -> std::io::Result<()> {
    let store = match &cfg.store {
        // One long-lived shared handle: every worker sees the same
        // generation, and a second daemon on the same root coordinates
        // through the store's own meta lock.
        Some(root) => Some(ArtifactStore::open_shared(root)?),
        None => None,
    };
    let manager = JobManager::new(JobsConfig {
        store,
        max_jobs: cfg.max_jobs,
        search_threads: cfg.search_threads,
        check_threads: cfg.check_threads,
    });
    let capture = TraceCapture::new();
    let capture_sink = snet_obs::install_sink(capture.clone());
    let telemetry = Arc::new(Telemetry {
        capture,
        ring: RequestRing::default(),
        traces: TraceStore::default(),
        access: match &cfg.access_log {
            Some(path) => Some(AccessLog::open(path)?),
            None => None,
        },
        slow_us: cfg.slow_ms.map(|ms| ms.saturating_mul(1000)),
        in_flight: AtomicI64::new(0),
    });

    // Pre-spawned connection workers drain one shared queue. The
    // receiver is behind a mutex (std mpsc has no multi-consumer
    // receiver); hand-off cost is irrelevant next to a check.
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::new();
    for i in 0..cfg.conn_threads.max(1) {
        let rx = rx.clone();
        let manager = manager.clone();
        let limits = cfg.limits;
        let stop = stop.clone();
        let telemetry = telemetry.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("snetd-conn-{i}"))
                .spawn(move || connection_worker(i, rx, manager, limits, stop, telemetry))?,
        );
    }

    listener.set_nonblocking(true)?;
    while !stopping(&stop) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                snet_obs::counter("httpd.connections", 1);
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                let _ = stream.set_nodelay(true);
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    // Drain: reject new work and finish what is running (search jobs
    // observe their cancel tokens and spill their TT frontiers), then
    // release the workers and flush observations. Clean exit — the
    // flight recorder writes nothing.
    manager.shutdown();
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    snet_obs::remove_sink(capture_sink);
    snet_obs::flush();
    Ok(())
}

fn connection_worker(
    index: usize,
    rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    manager: JobManager,
    limits: Limits,
    stop: Arc<AtomicBool>,
    telemetry: Arc<Telemetry>,
) {
    // Stable lane name in every exported trace, regardless of spawn
    // order (thread ordinals are first-emission order, not pool order).
    snet_obs::thread_lane(format!("http-worker-{index}"));
    loop {
        let stream = {
            let guard = rx.lock().expect("conn queue poisoned");
            match guard.recv_timeout(Duration::from_millis(200)) {
                Ok(s) => s,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if stopping(&stop) {
                        return;
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        serve_connection(stream, &manager, &limits, &stop, &telemetry);
    }
}

/// Runs one connection to completion: requests are answered in arrival
/// order (pipelining falls out of the per-connection read loop), and an
/// idle keep-alive socket is polled until the peer leaves or the daemon
/// drains.
fn serve_connection(
    stream: TcpStream,
    manager: &JobManager,
    limits: &Limits,
    stop: &AtomicBool,
    telemetry: &Telemetry,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, limits) {
            Ok(ReadOutcome::Request(req)) => {
                let close = req.wants_close();
                handle_exchange(&mut writer, &req, manager, telemetry);
                if close {
                    return;
                }
            }
            Ok(ReadOutcome::Eof) => return,
            Ok(ReadOutcome::Idle) => {
                if stopping(stop) {
                    return;
                }
            }
            Err(e) => {
                snet_obs::counter("httpd.rejected", 1);
                respond_error(&mut writer, &mut ReqMeta::default(), &e);
                return; // framing is unreliable after a parse error
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The traced exchange
// ---------------------------------------------------------------------------

/// What the routing layer learns about a request while answering it;
/// consumed by the RED histograms, the debug ring, and the access log.
#[derive(Default)]
struct ReqMeta {
    /// `x-snet-trace` echo value (absent on untraced probe paths).
    trace_header: Option<String>,
    status: u16,
    cache: Option<String>,
    hash: Option<String>,
    job: Option<String>,
    /// Linked trace (a coalesced follower's leader), echoed as
    /// `x-snet-link`.
    link: Option<String>,
}

/// Counts response bytes on their way to the socket.
struct CountingWriter<'a, W: Write> {
    inner: &'a mut W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Answers one request under full telemetry (see the module docs).
/// Probe endpoints short-circuit: their own labeled counter, nothing
/// else — a 5-second scrape loop must not drown the request telemetry.
fn handle_exchange(w: &mut impl Write, req: &Request, manager: &JobManager, tel: &Telemetry) {
    let path = req.path.split('?').next().unwrap_or("").to_string();
    let endpoint = telemetry::endpoint_label(&path);
    if path == "/healthz" || path == "/metrics" {
        snet_obs::counter_labeled("http.probe.requests", &[("endpoint", endpoint)], 1);
        let mut meta = ReqMeta::default();
        handle_request(w, req, manager, tel, &RequestCtx::default(), &mut meta);
        return;
    }

    snet_obs::counter("httpd.requests", 1);
    let (tctx, forwarded) = telemetry::extract_trace(req);
    if forwarded {
        snet_obs::counter("http.traced", 1);
    }
    let trace_hex = tctx.trace.to_hex();
    let trace = RequestTrace::new(tctx.trace);
    let attach = tel.capture.attach(&trace);
    let active = tel.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
    snet_obs::gauge("http.in_flight", active as f64);

    let start = Instant::now();
    let start_us = snet_obs::now_us();
    let token = tel.ring.begin(RequestEntry {
        trace: trace_hex.clone(),
        method: req.method.clone(),
        endpoint: endpoint.to_string(),
        start_us,
        status: 0,
        cache: None,
        bytes: 0,
        dur_us: 0,
        link: None,
    });

    let mut span = snet_obs::span("http.request")
        .attr("method", &req.method)
        .attr("endpoint", endpoint)
        .attr(snet_obs::TRACE_ATTR, &trace_hex);
    if forwarded {
        // The client's span id, so a cross-process merge can nest this
        // request under the span that issued it.
        span.add_attr("parent_span", format!("{:016x}", tctx.parent_span));
    }
    let ctx = RequestCtx {
        trace_hex: Some(trace_hex.clone()),
        capture: Some(tel.capture.clone()),
        trace: Some(trace.clone()),
        span: span.id(),
    };
    let mut meta = ReqMeta {
        trace_header: Some(TraceContext { trace: trace.trace, parent_span: span.id() }.to_header()),
        ..ReqMeta::default()
    };
    let mut counting = CountingWriter { inner: w, bytes: 0 };
    handle_request(&mut counting, req, manager, tel, &ctx, &mut meta);
    let bytes = counting.bytes;
    span.add_attr("status", meta.status);
    if let Some(link) = &meta.link {
        span.add_attr(snet_obs::LINK_ATTR, link.clone());
    }
    // Ending the request span urgent-drains this thread's event buffer,
    // so the capture holds everything the exchange emitted before the
    // trace is stored below.
    drop(span);
    drop(attach);

    snet_obs::counter("httpd.responses", 1);
    let active = tel.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
    snet_obs::gauge("http.in_flight", active as f64);
    let dur_us = start.elapsed().as_micros() as u64;
    let status = meta.status.to_string();
    let cache = meta.cache.as_deref().unwrap_or("none");
    snet_obs::observe(
        "http.request.duration",
        &[("endpoint", endpoint), ("status", &status), ("cache", cache)],
        dur_us,
    );
    tel.ring.finish(token, meta.status, meta.cache.clone(), bytes, dur_us, meta.link.clone());
    if let Some(log) = &tel.access {
        log.log(
            start_us,
            &trace_hex,
            &req.method,
            endpoint,
            meta.status,
            meta.cache.as_deref(),
            meta.hash.as_deref(),
            meta.job.as_deref(),
            bytes,
            dur_us,
            meta.link.as_deref(),
        );
    }
    if tel.slow_us.is_some_and(|slow| dur_us >= slow) && telemetry::dump_slow(&trace).is_some() {
        snet_obs::counter("http.slow.captured", 1);
    }
    // Introspection endpoints stay out of the bounded trace store:
    // polling /v1/debug/requests or /v1/trace/{id} while inspecting a
    // job must not evict the very traces being inspected.
    if endpoint != "/v1/debug/requests" && endpoint != "/v1/trace/{id}" {
        tel.traces.insert(trace.clone());
    }
    tel.capture.release(&trace);
}

/// Writes a response, echoing the request's trace id and recording the
/// status for the exchange telemetry. Every body-producing route funnels
/// through here (the chunked search stream sets its headers itself).
fn respond(
    w: &mut impl Write,
    meta: &mut ReqMeta,
    status: u16,
    ctype: &str,
    body: &[u8],
    extra: &[(&str, &str)],
) {
    meta.status = status;
    let mut headers: Vec<(&str, &str)> = extra.to_vec();
    if let Some(t) = &meta.trace_header {
        headers.push((snet_obs::TRACE_HEADER, t.as_str()));
    }
    let _ = write_response(w, status, ctype, body, &headers);
}

fn respond_error(w: &mut impl Write, meta: &mut ReqMeta, e: &HttpError) {
    let body = ErrorBody::new(&e.message).to_json();
    respond(w, meta, e.status, JSON, body.as_bytes(), &[]);
}

fn respond_api_error(w: &mut impl Write, meta: &mut ReqMeta, e: &ApiError) {
    let body = ErrorBody::new(&e.message).to_json();
    respond(w, meta, e.status, JSON, body.as_bytes(), &[]);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn handle_request(
    w: &mut impl Write,
    req: &Request,
    manager: &JobManager,
    tel: &Telemetry,
    ctx: &RequestCtx,
    meta: &mut ReqMeta,
) {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"schema\":\"{API_SCHEMA}\",\"status\":\"{}\"}}",
                if manager.draining() { "draining" } else { "ok" }
            );
            respond(w, meta, 200, JSON, body.as_bytes(), &[]);
        }
        ("GET", "/metrics") => {
            let text = snet_obs::registry::render_prometheus();
            respond(w, meta, 200, snet_obs::promtext::CONTENT_TYPE, text.as_bytes(), &[]);
        }
        ("GET", "/v1/debug/requests") => {
            let body = tel.ring.to_json();
            respond(w, meta, 200, JSON, body.as_bytes(), &[]);
        }
        ("GET", p) if p.starts_with("/v1/trace/") => {
            let id = &p["/v1/trace/".len()..];
            match tel.traces.get(id) {
                Some(trace) => {
                    let body = trace.to_jsonl();
                    respond(w, meta, 200, NDJSON, body.as_bytes(), &[]);
                }
                None => {
                    let body = ErrorBody::new(format!("no stored trace {id:?}")).to_json();
                    respond(w, meta, 404, JSON, body.as_bytes(), &[]);
                }
            }
        }
        ("POST", "/v1/check") => handle_check(w, req, manager, ctx, meta),
        ("POST", "/v1/adversary") => handle_adversary(w, req, manager, ctx, meta),
        ("POST", "/v1/search") => handle_search(w, req, manager, ctx, meta),
        (method, p) if p.starts_with("/v1/jobs/") => {
            let id = &p["/v1/jobs/".len()..];
            match method {
                "GET" => handle_job_get(w, id, manager, meta),
                "DELETE" => handle_job_delete(w, id, manager, meta),
                _ => method_not_allowed(w, meta),
            }
        }
        ("GET" | "POST" | "DELETE", _) => {
            let body = ErrorBody::new(format!("no route for {path}")).to_json();
            respond(w, meta, 404, JSON, body.as_bytes(), &[]);
        }
        _ => method_not_allowed(w, meta),
    }
}

fn method_not_allowed(w: &mut impl Write, meta: &mut ReqMeta) {
    let body = ErrorBody::new("method not allowed").to_json();
    respond(w, meta, 405, JSON, body.as_bytes(), &[]);
}

fn parse_body<T: serde::Deserialize>(req: &Request) -> Result<T, HttpError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| HttpError { status: 400, message: "body is not UTF-8".into() })?;
    serde_json::from_str(text)
        .map_err(|e| HttpError { status: 422, message: format!("cannot parse body: {e}") })
}

/// Answers a check with the verdict bytes **verbatim** — a warm hit
/// replays exactly what the producing run stored, so cold and warm
/// responses to one canonical form are byte-identical. Provenance rides
/// in headers instead of the body: cache disposition, canonical hash,
/// job id, and — when the bytes were computed under a *different*
/// request's trace (a coalesced follower) — an `x-snet-link` naming the
/// leader's trace.
fn answer_with_verdict(
    w: &mut impl Write,
    ctx: &RequestCtx,
    meta: &mut ReqMeta,
    answer: &CheckAnswer,
) {
    let cache = answer.cache.name();
    let hash = answer.hash.to_hex();
    let link: Option<String> = match &answer.trace {
        Some(t) if ctx.trace_hex.as_deref() != Some(t.as_str()) => Some(t.clone()),
        _ => None,
    };
    meta.cache = Some(cache.to_string());
    meta.hash = Some(hash.clone());
    meta.job = answer.job.clone();
    meta.link = link.clone();
    let mut extra: Vec<(&str, &str)> =
        vec![("x-snet-cache", cache), ("x-snet-hash", hash.as_str())];
    if let Some(job) = &answer.job {
        extra.push(("x-snet-job", job.as_str()));
    }
    if let Some(l) = &link {
        extra.push((LINK_HEADER, l.as_str()));
    }
    respond(w, meta, 200, JSON, &answer.body, &extra);
}

fn handle_check(
    w: &mut impl Write,
    req: &Request,
    manager: &JobManager,
    ctx: &RequestCtx,
    meta: &mut ReqMeta,
) {
    let parsed: CheckRequest = match parse_body(req) {
        Ok(p) => p,
        Err(e) => return respond_error(w, meta, &e),
    };
    match manager.check(&parsed.network, ctx) {
        Ok(answer) => answer_with_verdict(w, ctx, meta, &answer),
        Err(e) => respond_api_error(w, meta, &e),
    }
}

fn handle_adversary(
    w: &mut impl Write,
    req: &Request,
    manager: &JobManager,
    ctx: &RequestCtx,
    meta: &mut ReqMeta,
) {
    let parsed: AdversaryRequest = match parse_body(req) {
        Ok(p) => p,
        Err(e) => return respond_error(w, meta, &e),
    };
    match manager.adversary(&parsed, ctx) {
        Ok(answer) => answer_with_verdict(w, ctx, meta, &answer),
        Err(e) => respond_api_error(w, meta, &e),
    }
}

/// Submits a search job and streams its ND-JSON progress frames until
/// the job closes its stream; the final frame is the terminal lifecycle
/// transition. The job id rides in the `x-snet-job` header so a client
/// can fetch the result document afterwards.
fn handle_search(
    w: &mut impl Write,
    req: &Request,
    manager: &JobManager,
    ctx: &RequestCtx,
    meta: &mut ReqMeta,
) {
    let parsed: SearchRequest = match parse_body(req) {
        Ok(p) => p,
        Err(e) => return respond_error(w, meta, &e),
    };
    let job: Arc<Job> = match manager.submit_search(&parsed, ctx) {
        Ok(j) => j,
        Err(e) => return respond_api_error(w, meta, &e),
    };
    meta.job = Some(job.id.clone());
    let mut extra: Vec<(&str, &str)> = vec![("x-snet-job", job.id.as_str())];
    if let Some(t) = &meta.trace_header {
        extra.push((snet_obs::TRACE_HEADER, t.as_str()));
    }
    // The 200 is recorded only once the response head actually reaches
    // the socket; a failed start leaves status 0 so the telemetry shows
    // a broken exchange, not a success.
    let mut chunked = match ChunkedWriter::start(w, 200, NDJSON, &extra) {
        Ok(c) => c,
        Err(_) => return,
    };
    meta.status = 200;
    loop {
        match job.obs.poll(Duration::from_millis(250)) {
            FramePoll::Frame(f) => {
                let mut line = f.to_json_line();
                line.push('\n');
                if chunked.chunk(line.as_bytes()).is_err() {
                    // Client went away: the job keeps running; its
                    // result stays fetchable via /v1/jobs/{id}.
                    return;
                }
            }
            FramePoll::Idle => {}
            FramePoll::Closed => break,
        }
    }
    let _ = chunked.finish();
}

fn handle_job_get(w: &mut impl Write, id: &str, manager: &JobManager, meta: &mut ReqMeta) {
    match manager.job(id) {
        Some(job) => {
            let body = job.status().to_json();
            respond(w, meta, 200, JSON, body.as_bytes(), &[]);
        }
        None => {
            let body = ErrorBody::new(format!("unknown job {id:?}")).to_json();
            respond(w, meta, 404, JSON, body.as_bytes(), &[]);
        }
    }
}

fn handle_job_delete(w: &mut impl Write, id: &str, manager: &JobManager, meta: &mut ReqMeta) {
    if manager.cancel(id) {
        let body = format!("{{\"schema\":\"{API_SCHEMA}\",\"cancelled\":\"{id}\"}}");
        respond(w, meta, 200, JSON, body.as_bytes(), &[]);
    } else {
        let body = ErrorBody::new(format!("unknown job {id:?}")).to_json();
        respond(w, meta, 404, JSON, body.as_bytes(), &[]);
    }
}
