//! The TCP front end: an accept loop feeding a bounded pool of
//! connection workers, request routing, streaming search responses, and
//! a SIGTERM-driven graceful drain.
//!
//! ## Shutdown
//!
//! `SIGTERM`/`SIGINT` set a process-global flag (the handler does
//! nothing else — it is async-signal-safe). The accept loop notices
//! within one poll interval and stops accepting; the job manager drains
//! (cancelling live jobs, which still spill their search frontiers to
//! the store); connection workers finish their current exchange and
//! exit; buffered observations flush. A drained exit is *clean*: the
//! flight recorder writes nothing.

use crate::http::{
    read_request, write_response, ChunkedWriter, HttpError, Limits, ReadOutcome, Request,
};
use crate::jobs::{ApiError, CheckAnswer, FramePoll, Job, JobManager, JobsConfig};
use snet_core::api::{AdversaryRequest, CheckRequest, ErrorBody, SearchRequest, API_SCHEMA};
use snet_store::ArtifactStore;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const JSON: &str = "application/json";
const NDJSON: &str = "application/x-ndjson";

/// How long a blocked socket read waits before the worker re-checks the
/// shutdown flag; also bounds how stale an idle keep-alive poll can be.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------------
// Signals, without libc: the two handlers the daemon needs, installed
// through the raw C `signal` entry point.
// ---------------------------------------------------------------------------

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one relaxed store, nothing else.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs the SIGTERM/SIGINT handlers that request a graceful drain.
pub fn install_signal_handlers() {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// Requests a process-wide drain programmatically (what the signal
/// handlers do). In-process servers prefer [`ServerHandle::shutdown`],
/// which drains only that server.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// A signal or [`request_shutdown`] drains every server in the process;
/// a [`ServerHandle`]'s own stop flag drains just it (so parallel test
/// harnesses don't tear each other down).
fn stopping(stop: &AtomicBool) -> bool {
    stop.load(Ordering::Relaxed) || SHUTDOWN.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Everything `serve` needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Connection worker threads (concurrent HTTP exchanges).
    pub conn_threads: usize,
    /// Concurrent search jobs.
    pub max_jobs: usize,
    /// Worker threads per search job.
    pub search_threads: usize,
    /// Worker threads per exhaustive check.
    pub check_threads: usize,
    /// Artifact store root (`None` disables caching).
    pub store: Option<std::path::PathBuf>,
    /// Request size limits.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            conn_threads: 4,
            max_jobs: 2,
            search_threads: 1,
            check_threads: 1,
            store: None,
            limits: Limits::default(),
        }
    }
}

/// A running daemon, for in-process harnesses: the bound address, the
/// server's own stop flag, and the join handle of the serve loop.
pub struct ServerHandle {
    /// The actual bound address (resolves `:0`).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Requests a graceful drain of this server only and waits for it.
    pub fn shutdown(self) -> std::io::Result<()> {
        self.stop.store(true, Ordering::Relaxed);
        self.join()
    }

    /// Waits for the serve loop to drain and exit.
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().unwrap_or_else(|_| Err(std::io::Error::other("serve loop panicked")))
    }
}

/// Binds and spawns the serve loop on a background thread, returning
/// once the listener is live. The loop exits on
/// [`ServerHandle::shutdown`], [`request_shutdown`], or a signal (when
/// handlers are installed).
pub fn spawn(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let loop_stop = stop.clone();
    let thread = std::thread::Builder::new()
        .name("snetd-accept".into())
        .spawn(move || serve_on(listener, cfg, loop_stop))?;
    Ok(ServerHandle { addr, stop, thread })
}

/// Binds and runs the serve loop on the calling thread (the binary's
/// entry point); only a signal (or [`request_shutdown`]) ends it.
pub fn serve(cfg: ServeConfig) -> std::io::Result<()> {
    let listener = TcpListener::bind(&cfg.addr)?;
    eprintln!("snetd: listening on {}", listener.local_addr()?);
    serve_on(listener, cfg, Arc::new(AtomicBool::new(false)))
}

fn serve_on(listener: TcpListener, cfg: ServeConfig, stop: Arc<AtomicBool>) -> std::io::Result<()> {
    let store = match &cfg.store {
        // One long-lived shared handle: every worker sees the same
        // generation, and a second daemon on the same root coordinates
        // through the store's own meta lock.
        Some(root) => Some(ArtifactStore::open_shared(root)?),
        None => None,
    };
    let manager = JobManager::new(JobsConfig {
        store,
        max_jobs: cfg.max_jobs,
        search_threads: cfg.search_threads,
        check_threads: cfg.check_threads,
    });

    // Pre-spawned connection workers drain one shared queue. The
    // receiver is behind a mutex (std mpsc has no multi-consumer
    // receiver); hand-off cost is irrelevant next to a check.
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::new();
    for i in 0..cfg.conn_threads.max(1) {
        let rx = rx.clone();
        let manager = manager.clone();
        let limits = cfg.limits;
        let stop = stop.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("snetd-conn-{i}"))
                .spawn(move || connection_worker(rx, manager, limits, stop))?,
        );
    }

    listener.set_nonblocking(true)?;
    while !stopping(&stop) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                snet_obs::counter("httpd.connections", 1);
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                let _ = stream.set_nodelay(true);
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    // Drain: reject new work and finish what is running (search jobs
    // observe their cancel tokens and spill their TT frontiers), then
    // release the workers and flush observations. Clean exit — the
    // flight recorder writes nothing.
    manager.shutdown();
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    snet_obs::flush();
    Ok(())
}

fn connection_worker(
    rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    manager: JobManager,
    limits: Limits,
    stop: Arc<AtomicBool>,
) {
    loop {
        let stream = {
            let guard = rx.lock().expect("conn queue poisoned");
            match guard.recv_timeout(Duration::from_millis(200)) {
                Ok(s) => s,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if stopping(&stop) {
                        return;
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        serve_connection(stream, &manager, &limits, &stop);
    }
}

/// Runs one connection to completion: requests are answered in arrival
/// order (pipelining falls out of the per-connection read loop), and an
/// idle keep-alive socket is polled until the peer leaves or the daemon
/// drains.
fn serve_connection(stream: TcpStream, manager: &JobManager, limits: &Limits, stop: &AtomicBool) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, limits) {
            Ok(ReadOutcome::Request(req)) => {
                snet_obs::counter("httpd.requests", 1);
                let close = req.wants_close();
                handle_request(&mut writer, &req, manager);
                snet_obs::counter("httpd.responses", 1);
                if close {
                    return;
                }
            }
            Ok(ReadOutcome::Eof) => return,
            Ok(ReadOutcome::Idle) => {
                if stopping(stop) {
                    return;
                }
            }
            Err(e) => {
                snet_obs::counter("httpd.rejected", 1);
                respond_error(&mut writer, &e);
                return; // framing is unreliable after a parse error
            }
        }
    }
}

fn respond_error(w: &mut impl Write, e: &HttpError) {
    let body = ErrorBody::new(&e.message).to_json();
    let _ = write_response(w, e.status, JSON, body.as_bytes(), &[]);
}

fn respond_api_error(w: &mut impl Write, e: &ApiError) {
    let body = ErrorBody::new(&e.message).to_json();
    let _ = write_response(w, e.status, JSON, body.as_bytes(), &[]);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn handle_request(w: &mut impl Write, req: &Request, manager: &JobManager) {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"schema\":\"{API_SCHEMA}\",\"status\":\"{}\"}}",
                if manager.draining() { "draining" } else { "ok" }
            );
            let _ = write_response(w, 200, JSON, body.as_bytes(), &[]);
        }
        ("GET", "/metrics") => {
            let text = snet_obs::registry::render_prometheus();
            let _ = write_response(w, 200, snet_obs::promtext::CONTENT_TYPE, text.as_bytes(), &[]);
        }
        ("POST", "/v1/check") => handle_check(w, req, manager),
        ("POST", "/v1/adversary") => handle_adversary(w, req, manager),
        ("POST", "/v1/search") => handle_search(w, req, manager),
        (method, p) if p.starts_with("/v1/jobs/") => {
            let id = &p["/v1/jobs/".len()..];
            match method {
                "GET" => handle_job_get(w, id, manager),
                "DELETE" => handle_job_delete(w, id, manager),
                _ => method_not_allowed(w),
            }
        }
        ("GET" | "POST" | "DELETE", _) => {
            let body = ErrorBody::new(format!("no route for {path}")).to_json();
            let _ = write_response(w, 404, JSON, body.as_bytes(), &[]);
        }
        _ => method_not_allowed(w),
    }
}

fn method_not_allowed(w: &mut impl Write) {
    let body = ErrorBody::new("method not allowed").to_json();
    let _ = write_response(w, 405, JSON, body.as_bytes(), &[]);
}

fn parse_body<T: serde::Deserialize>(req: &Request) -> Result<T, HttpError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| HttpError { status: 400, message: "body is not UTF-8".into() })?;
    serde_json::from_str(text)
        .map_err(|e| HttpError { status: 422, message: format!("cannot parse body: {e}") })
}

/// Answers a check with the verdict bytes **verbatim** — a warm hit
/// replays exactly what the producing run stored, so cold and warm
/// responses to one canonical form are byte-identical. Provenance rides
/// in headers instead of the body.
fn answer_with_verdict(w: &mut impl Write, answer: &CheckAnswer) {
    let cache = answer.cache.name();
    let hash = answer.hash.to_hex();
    let mut extra: Vec<(&str, &str)> =
        vec![("x-snet-cache", cache), ("x-snet-hash", hash.as_str())];
    if let Some(job) = &answer.job {
        extra.push(("x-snet-job", job.as_str()));
    }
    let _ = write_response(w, 200, JSON, &answer.body, &extra);
}

fn handle_check(w: &mut impl Write, req: &Request, manager: &JobManager) {
    let parsed: CheckRequest = match parse_body(req) {
        Ok(p) => p,
        Err(e) => return respond_error(w, &e),
    };
    match manager.check(&parsed.network) {
        Ok(answer) => answer_with_verdict(w, &answer),
        Err(e) => respond_api_error(w, &e),
    }
}

fn handle_adversary(w: &mut impl Write, req: &Request, manager: &JobManager) {
    let parsed: AdversaryRequest = match parse_body(req) {
        Ok(p) => p,
        Err(e) => return respond_error(w, &e),
    };
    match manager.adversary(&parsed) {
        Ok(answer) => answer_with_verdict(w, &answer),
        Err(e) => respond_api_error(w, &e),
    }
}

/// Submits a search job and streams its ND-JSON progress frames until
/// the job closes its stream; the final frame is the terminal lifecycle
/// transition. The job id rides in the `x-snet-job` header so a client
/// can fetch the result document afterwards.
fn handle_search(w: &mut impl Write, req: &Request, manager: &JobManager) {
    let parsed: SearchRequest = match parse_body(req) {
        Ok(p) => p,
        Err(e) => return respond_error(w, &e),
    };
    let job: Arc<Job> = match manager.submit_search(&parsed) {
        Ok(j) => j,
        Err(e) => return respond_api_error(w, &e),
    };
    let extra = [("x-snet-job", job.id.as_str())];
    let mut chunked = match ChunkedWriter::start(w, 200, NDJSON, &extra) {
        Ok(c) => c,
        Err(_) => return,
    };
    loop {
        match job.obs.poll(Duration::from_millis(250)) {
            FramePoll::Frame(f) => {
                let mut line = f.to_json_line();
                line.push('\n');
                if chunked.chunk(line.as_bytes()).is_err() {
                    // Client went away: the job keeps running; its
                    // result stays fetchable via /v1/jobs/{id}.
                    return;
                }
            }
            FramePoll::Idle => {}
            FramePoll::Closed => break,
        }
    }
    let _ = chunked.finish();
}

fn handle_job_get(w: &mut impl Write, id: &str, manager: &JobManager) {
    match manager.job(id) {
        Some(job) => {
            let body = job.status().to_json();
            let _ = write_response(w, 200, JSON, body.as_bytes(), &[]);
        }
        None => {
            let body = ErrorBody::new(format!("unknown job {id:?}")).to_json();
            let _ = write_response(w, 404, JSON, body.as_bytes(), &[]);
        }
    }
}

fn handle_job_delete(w: &mut impl Write, id: &str, manager: &JobManager) {
    if manager.cancel(id) {
        let body = format!("{{\"schema\":\"{API_SCHEMA}\",\"cancelled\":\"{id}\"}}");
        let _ = write_response(w, 200, JSON, body.as_bytes(), &[]);
    } else {
        let body = ErrorBody::new(format!("unknown job {id:?}")).to_json();
        let _ = write_response(w, 404, JSON, body.as_bytes(), &[]);
    }
}
