//! A minimal blocking HTTP/1.1 client for `snetctl query` and the
//! service tests: one request per connection (`Connection: close`),
//! fixed-length and chunked response bodies, and a line-callback mode
//! for ND-JSON streams.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A fully-read response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header value under `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the whole response (de-chunking if the
/// server streamed it).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> std::io::Result<Response> {
    request_with(addr, method, path, body, &[])
}

/// [`request`] with extra request headers (e.g. `x-snet-trace`).
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    headers: &[(&str, &str)],
) -> std::io::Result<Response> {
    let mut collected = Vec::new();
    let resp = exchange(addr, method, path, body, headers, &mut |bytes| {
        collected.extend_from_slice(bytes);
        true
    })?;
    Ok(Response { status: resp.status, headers: resp.headers, body: collected })
}

/// Sends one request and invokes `on_line` for every `\n`-terminated
/// line of the (chunked) body as it arrives. Returning `false` from the
/// callback closes the connection early. Returns the response head and
/// any trailing partial line.
pub fn stream_lines(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    on_line: &mut dyn FnMut(&str) -> bool,
) -> std::io::Result<Response> {
    stream_lines_with(addr, method, path, body, &[], on_line)
}

/// [`stream_lines`] with extra request headers (e.g. `x-snet-trace`).
pub fn stream_lines_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    headers: &[(&str, &str)],
    on_line: &mut dyn FnMut(&str) -> bool,
) -> std::io::Result<Response> {
    let mut tail: Vec<u8> = Vec::new();
    let mut keep = true;
    let resp = exchange(addr, method, path, body, headers, &mut |bytes| {
        if !keep {
            return false;
        }
        tail.extend_from_slice(bytes);
        while let Some(pos) = tail.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = tail.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            if !on_line(&text) {
                keep = false;
                return false;
            }
        }
        true
    })?;
    Ok(Response { status: resp.status, headers: resp.headers, body: tail })
}

/// The common exchange: connect, send, parse the head, then feed body
/// bytes (already de-chunked) to `on_body` until the message ends or the
/// callback declines more.
fn exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    headers: &[(&str, &str)],
    on_body: &mut dyn FnMut(&[u8]) -> bool,
) -> std::io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    let mut w = stream.try_clone()?;
    write!(w, "{method} {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n")?;
    for (name, value) in headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    if let Some(b) = body {
        write!(w, "content-type: application/json\r\ncontent-length: {}\r\n\r\n", b.len())?;
        w.write_all(b)?;
    } else {
        w.write_all(b"\r\n")?;
    }
    w.flush()?;

    let mut r = BufReader::new(stream);
    let mut status_line = String::new();
    r.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        r.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) =
            line.split_once(':').ok_or_else(|| bad(format!("malformed header {line:?}")))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |n: &str| headers.iter().find(|(k, _)| k == n).map(|(_, v)| v.clone());
    let chunked = find("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    if chunked {
        loop {
            let mut size_line = String::new();
            r.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad(format!("malformed chunk size {size_line:?}")))?;
            if size == 0 {
                let mut crlf = String::new();
                let _ = r.read_line(&mut crlf);
                break;
            }
            let mut chunk = vec![0u8; size];
            r.read_exact(&mut chunk)?;
            let mut crlf = [0u8; 2];
            r.read_exact(&mut crlf)?;
            if !on_body(&chunk) {
                break;
            }
        }
    } else if let Some(cl) = find("content-length") {
        let len: usize = cl.parse().map_err(|_| bad(format!("malformed content-length {cl:?}")))?;
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        on_body(&buf);
    } else {
        // No framing: read to EOF (we sent Connection: close).
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        on_body(&buf);
    }
    Ok(Response { status, headers, body: Vec::new() })
}

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}
