//! `snetd`: the long-running network-verification service.
//!
//! A dependency-free HTTP/1.1 daemon over `std::net` that turns the
//! workspace's one-shot pipelines (compile → check → persist, the §4
//! adversary, the depth-optimal search) into queryable endpoints with a
//! job manager in front:
//!
//! | endpoint              | answer |
//! |-----------------------|--------|
//! | `POST /v1/check`      | `snet-verdict/1` sort certificate or lowest-index counterexample |
//! | `POST /v1/adversary`  | §4 adversary witness verdict for a `(d,l)`-network |
//! | `POST /v1/search`     | job id + ND-JSON progress stream (chunked) |
//! | `GET /v1/jobs/{id}`   | job status / result document |
//! | `DELETE /v1/jobs/{id}`| cooperative cancel (search spills stay resumable) |
//! | `GET /v1/trace/{id}`  | stored span tree of a finished request (JSONL) |
//! | `GET /v1/debug/requests` | tracez-style ring: active + recently finished requests |
//! | `GET /metrics`        | Prometheus text exposition of the live registry |
//! | `GET /healthz`        | liveness + drain state |
//!
//! The interesting machinery is in [`jobs`]: content-addressed request
//! coalescing (N identical in-flight checks compile once), read-through/
//! write-through [`snet_store`] caching (a warm hit replays the stored
//! verdict bytes verbatim — responses are byte-identical across
//! cold/warm/coalesced), and per-job progress capture routed from
//! [`snet_obs`] events. [`server`] adds the bounded worker pool and the
//! SIGTERM graceful drain; [`http`] is the hand-rolled wire layer;
//! [`client`] is the matching blocking client `snetctl query` uses.
//!
//! [`telemetry`] threads a trace context through all of it: an
//! `x-snet-trace` request header (or a fresh server-side id when
//! absent/malformed) names every span, progress frame, access-log line,
//! and RED histogram sample the request produces, coalesced riders link
//! to their leader's trace via `x-snet-link`, and finished span trees
//! are queryable back out of `/v1/trace/{id}` for `snetctl trace` to
//! merge with the client's own spans into one cross-process timeline.

pub mod client;
pub mod http;
pub mod jobs;
pub mod server;
pub mod telemetry;

pub use http::Limits;
pub use jobs::{ApiError, CheckAnswer, FramePoll, Job, JobManager, JobsConfig};
pub use server::{
    install_signal_handlers, request_shutdown, serve, spawn, ServeConfig, ServerHandle,
};
pub use telemetry::{RequestCtx, TraceCapture, LINK_HEADER};
