//! Request-scoped service telemetry: per-request trace capture, the
//! tracez-style request ring behind `GET /v1/debug/requests`, the
//! bounded trace store behind `GET /v1/trace/{trace_id}`, the JSONL
//! access log, and slow-request auto-capture.
//!
//! ## Trace capture
//!
//! Every traced request owns a [`RequestTrace`]: a bounded buffer of the
//! obs events the request caused. A process-global [`TraceCapture`] sink
//! routes events to the owning trace two ways:
//!
//! * **by thread** — the connection thread (and a search job's worker
//!   thread) registers itself with [`TraceCapture::attach`] for the
//!   request's duration, so everything those threads emit is captured;
//! * **by span descent** — a `SpanStart` whose parent span already
//!   belongs to a trace joins that trace and enrolls its own id, so
//!   `span_under` worker spans emitted from *unregistered* pool threads
//!   (the search engine's crossbeam scope) still land in the right
//!   request trace.
//!
//! The capture sink never calls back into the obs API (that would
//! deadlock the drain); it only touches its own mutexes.

use snet_obs::tracectx::{TraceContext, TRACE_HEADER};
use snet_obs::{Event, EventKind, Sink, TraceId};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Response header naming a causally-linked trace (a coalesced rider
/// points at the leader's trace, where the shared compile ran).
pub const LINK_HEADER: &str = "x-snet-link";

/// Events kept per request before the trace starts dropping; the drop
/// count is reported in the trace document so truncation is visible.
const MAX_TRACE_EVENTS: usize = 4096;

/// Finished requests kept in the debug ring.
const RING_CAPACITY: usize = 256;

/// Finished request traces kept for `GET /v1/trace/{id}`.
const TRACE_STORE_CAPACITY: usize = 128;

// ---------------------------------------------------------------------------
// Trace extraction
// ---------------------------------------------------------------------------

/// Pulls the trace context out of a request's headers. Returns the
/// context and whether it was *forwarded* by the client (`false` means
/// the server generated a fresh one). Degrades, never rejects: a
/// missing, malformed, oversized, or duplicated `x-snet-trace` header
/// yields a fresh server-generated context — telemetry must not be able
/// to fail a request.
pub fn extract_trace(req: &crate::http::Request) -> (TraceContext, bool) {
    let mut values = req.headers.iter().filter(|(k, _)| k == TRACE_HEADER);
    let first = values.next();
    let duplicated = values.next().is_some();
    if let (Some((_, v)), false) = (first, duplicated) {
        if let Some(ctx) = TraceContext::parse_header(v) {
            return (ctx, true);
        }
    }
    (TraceContext::generate(), false)
}

/// Collapses a request path into a bounded-cardinality endpoint label
/// for RED metrics: job and trace lookups share one label, unknown
/// paths collapse to `"other"`.
pub fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/check" => "/v1/check",
        "/v1/adversary" => "/v1/adversary",
        "/v1/search" => "/v1/search",
        "/v1/debug/requests" => "/v1/debug/requests",
        p if p.starts_with("/v1/jobs/") => "/v1/jobs/{id}",
        p if p.starts_with("/v1/trace/") => "/v1/trace/{id}",
        _ => "other",
    }
}

// ---------------------------------------------------------------------------
// RequestTrace + TraceCapture
// ---------------------------------------------------------------------------

/// The events one traced request caused, bounded.
pub struct RequestTrace {
    /// The owning trace id.
    pub trace: TraceId,
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

impl RequestTrace {
    /// A fresh, empty trace buffer for `trace`.
    pub fn new(trace: TraceId) -> Arc<RequestTrace> {
        Arc::new(RequestTrace { trace, events: Mutex::new(Vec::new()), dropped: AtomicU64::new(0) })
    }

    fn record(&self, e: &Event) {
        let mut events = self.events.lock().expect("request trace poisoned");
        if events.len() >= MAX_TRACE_EVENTS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(e.clone());
    }

    /// A copy of the captured events (emission order per thread).
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("request trace poisoned").clone()
    }

    /// Events dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The captured events as ND-JSON lines (the `GET /v1/trace/{id}`
    /// body and the slow-capture dump format — same schema as a trace
    /// file, so `snetctl report` and the Chrome exporter read it
    /// directly).
    pub fn to_jsonl(&self) -> String {
        let events = self.events.lock().expect("request trace poisoned");
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// The process-global capture sink: routes events to request traces by
/// registered thread ordinal or by span descent (see module docs).
#[derive(Default)]
pub struct TraceCapture {
    /// obs thread ordinal → the trace capturing that thread.
    threads: Mutex<HashMap<u64, Arc<RequestTrace>>>,
    /// span id → owning trace, for cross-thread descendants.
    spans: Mutex<HashMap<u64, Arc<RequestTrace>>>,
}

impl TraceCapture {
    /// Builds an empty capture table (install via
    /// [`snet_obs::install_sink`]).
    pub fn new() -> Arc<TraceCapture> {
        Arc::new(TraceCapture::default())
    }

    /// Routes the calling thread's events to `trace` until the guard
    /// drops.
    pub fn attach(self: &Arc<TraceCapture>, trace: &Arc<RequestTrace>) -> AttachGuard {
        let ordinal = snet_obs::thread_ordinal();
        self.threads.lock().expect("capture threads poisoned").insert(ordinal, trace.clone());
        AttachGuard { capture: self.clone(), ordinal }
    }

    /// Drops every span-descent route pointing at `trace`. Called when
    /// a request finishes so a span whose end was never observed cannot
    /// leak its table entry.
    pub fn release(&self, trace: &Arc<RequestTrace>) {
        self.spans.lock().expect("capture spans poisoned").retain(|_, t| !Arc::ptr_eq(t, trace));
    }
}

/// RAII for [`TraceCapture::attach`].
pub struct AttachGuard {
    capture: Arc<TraceCapture>,
    ordinal: u64,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        self.capture.threads.lock().expect("capture threads poisoned").remove(&self.ordinal);
    }
}

impl Sink for TraceCapture {
    fn event(&self, e: &Event) {
        // Fast path: the emitting thread is registered to a request.
        let by_thread =
            self.threads.lock().expect("capture threads poisoned").get(&e.thread).cloned();
        let target = match by_thread {
            Some(t) => Some(t),
            None => {
                // Span descent: starts join their parent's trace; later
                // events from that span resolve through its own id.
                let spans = self.spans.lock().expect("capture spans poisoned");
                spans
                    .get(&e.parent)
                    .or_else(|| if e.id != 0 { spans.get(&e.id) } else { None })
                    .cloned()
            }
        };
        let Some(trace) = target else { return };
        match e.kind {
            EventKind::SpanStart => {
                self.spans.lock().expect("capture spans poisoned").insert(e.id, trace.clone());
                trace.record(e);
            }
            EventKind::SpanEnd => {
                self.spans.lock().expect("capture spans poisoned").remove(&e.id);
                trace.record(e);
            }
            _ => trace.record(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Debug request ring
// ---------------------------------------------------------------------------

/// One row of `GET /v1/debug/requests`.
#[derive(Debug, Clone)]
pub struct RequestEntry {
    /// Hex trace id.
    pub trace: String,
    /// HTTP method.
    pub method: String,
    /// Normalized endpoint label.
    pub endpoint: String,
    /// Start time, µs since the obs epoch.
    pub start_us: u64,
    /// Response status (0 while the request is active).
    pub status: u16,
    /// Cache disposition (`miss`/`hit`/`coalesced`), when the endpoint
    /// has one.
    pub cache: Option<String>,
    /// Response body bytes.
    pub bytes: u64,
    /// Wall duration (0 while active).
    pub dur_us: u64,
    /// Linked (leader) trace id for coalesced riders.
    pub link: Option<String>,
}

impl RequestEntry {
    fn to_json(&self, active: bool) -> String {
        let mut out = String::from("{");
        push_str_field(&mut out, "trace", &self.trace, true);
        push_str_field(&mut out, "method", &self.method, false);
        push_str_field(&mut out, "endpoint", &self.endpoint, false);
        out.push_str(&format!(",\"active\":{active}"));
        out.push_str(&format!(",\"start_us\":{}", self.start_us));
        if !active {
            out.push_str(&format!(",\"status\":{}", self.status));
            out.push_str(&format!(",\"bytes\":{}", self.bytes));
            out.push_str(&format!(",\"dur_us\":{}", self.dur_us));
        }
        if let Some(c) = &self.cache {
            push_str_field(&mut out, "cache", c, false);
        }
        if let Some(l) = &self.link {
            push_str_field(&mut out, "link", l, false);
        }
        out.push('}');
        out
    }
}

/// tracez-style ring: the currently-active requests plus the most
/// recently finished `RING_CAPACITY`.
#[derive(Default)]
pub struct RequestRing {
    next: AtomicU64,
    active: Mutex<HashMap<u64, RequestEntry>>,
    recent: Mutex<VecDeque<RequestEntry>>,
}

impl RequestRing {
    /// Registers an active request; the token keys [`finish`](Self::finish).
    pub fn begin(&self, entry: RequestEntry) -> u64 {
        let token = self.next.fetch_add(1, Ordering::Relaxed);
        self.active.lock().expect("request ring poisoned").insert(token, entry);
        token
    }

    /// Moves a request from active to recent with its outcome filled in.
    pub fn finish(
        &self,
        token: u64,
        status: u16,
        cache: Option<String>,
        bytes: u64,
        dur_us: u64,
        link: Option<String>,
    ) {
        let Some(mut entry) = self.active.lock().expect("request ring poisoned").remove(&token)
        else {
            return;
        };
        entry.status = status;
        entry.cache = cache;
        entry.bytes = bytes;
        entry.dur_us = dur_us;
        entry.link = link;
        let mut recent = self.recent.lock().expect("request ring poisoned");
        if recent.len() >= RING_CAPACITY {
            recent.pop_front();
        }
        recent.push_back(entry);
    }

    /// The `GET /v1/debug/requests` document: active requests first
    /// (oldest first), then recent ones (newest first).
    pub fn to_json(&self) -> String {
        let mut active: Vec<RequestEntry> =
            self.active.lock().expect("request ring poisoned").values().cloned().collect();
        active.sort_by_key(|e| e.start_us);
        let recent = self.recent.lock().expect("request ring poisoned");
        let mut out = format!("{{\"schema\":\"{}\",\"active\":[", snet_core::api::API_SCHEMA);
        for (i, e) in active.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json(true));
        }
        out.push_str("],\"recent\":[");
        for (i, e) in recent.iter().rev().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json(false));
        }
        out.push_str("]}");
        out
    }
}

// ---------------------------------------------------------------------------
// Trace store
// ---------------------------------------------------------------------------

/// Insertion order and the id → trace map, behind one lock so eviction
/// and lookup agree.
type TraceStoreInner = (VecDeque<String>, HashMap<String, Arc<RequestTrace>>);

/// Bounded map of finished request traces, keyed by hex trace id;
/// insertion-order eviction.
#[derive(Default)]
pub struct TraceStore {
    inner: Mutex<TraceStoreInner>,
}

impl TraceStore {
    /// Stores a finished trace, evicting the oldest beyond capacity.
    /// One trace id can span several requests — a query's search stream
    /// and its follow-up status poll share a context — so inserting an
    /// id that is already stored appends the new request's events to
    /// the existing tree instead of clobbering it.
    pub fn insert(&self, trace: Arc<RequestTrace>) {
        let key = trace.trace.to_hex();
        let mut inner = self.inner.lock().expect("trace store poisoned");
        let (order, map) = &mut *inner;
        match map.get(&key) {
            Some(existing) if !Arc::ptr_eq(existing, &trace) => {
                for e in trace.events() {
                    existing.record(&e);
                }
                existing.dropped.fetch_add(trace.dropped(), Ordering::Relaxed);
            }
            Some(_) => {}
            None => {
                map.insert(key.clone(), trace);
                order.push_back(key);
                while order.len() > TRACE_STORE_CAPACITY {
                    if let Some(old) = order.pop_front() {
                        map.remove(&old);
                    }
                }
            }
        }
    }

    /// Looks up a trace by hex id.
    pub fn get(&self, hex: &str) -> Option<Arc<RequestTrace>> {
        self.inner.lock().expect("trace store poisoned").1.get(hex).cloned()
    }
}

// ---------------------------------------------------------------------------
// Access log
// ---------------------------------------------------------------------------

/// Schema tag stamped into every access-log line.
pub const ACCESS_SCHEMA: &str = "snet-access/1";

/// Append-only JSONL access log: one line per finished request.
pub struct AccessLog {
    file: Mutex<std::fs::File>,
}

impl AccessLog {
    /// Opens (appending) or creates the log file.
    pub fn open(path: &std::path::Path) -> std::io::Result<AccessLog> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AccessLog { file: Mutex::new(file) })
    }

    /// Appends one request record. Best-effort: a full disk must not
    /// fail the request that was already answered.
    #[allow(clippy::too_many_arguments)]
    pub fn log(
        &self,
        t_us: u64,
        trace: &str,
        method: &str,
        endpoint: &str,
        status: u16,
        cache: Option<&str>,
        hash: Option<&str>,
        job: Option<&str>,
        bytes: u64,
        dur_us: u64,
        link: Option<&str>,
    ) {
        let mut line = String::from("{");
        push_str_field(&mut line, "schema", ACCESS_SCHEMA, true);
        line.push_str(&format!(",\"t_us\":{t_us}"));
        push_str_field(&mut line, "trace", trace, false);
        push_str_field(&mut line, "method", method, false);
        push_str_field(&mut line, "endpoint", endpoint, false);
        line.push_str(&format!(",\"status\":{status}"));
        if let Some(c) = cache {
            push_str_field(&mut line, "cache", c, false);
        }
        if let Some(h) = hash {
            push_str_field(&mut line, "hash", h, false);
        }
        if let Some(j) = job {
            push_str_field(&mut line, "job", j, false);
        }
        line.push_str(&format!(",\"bytes\":{bytes}"));
        line.push_str(&format!(",\"dur_us\":{dur_us}"));
        if let Some(l) = link {
            push_str_field(&mut line, "link", l, false);
        }
        line.push_str("}\n");
        let mut f = self.file.lock().expect("access log poisoned");
        let _ = f.write_all(line.as_bytes());
        let _ = f.flush();
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str, first: bool) {
    if !first {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Slow-request capture
// ---------------------------------------------------------------------------

/// Dumps a slow request's captured span tree to
/// `slow-<trace>.jsonl` next to the flight dumps (current directory),
/// same JSONL schema as a trace file. Returns the path on success.
pub fn dump_slow(trace: &Arc<RequestTrace>) -> Option<PathBuf> {
    let text = trace.to_jsonl();
    if text.is_empty() {
        return None;
    }
    let path = PathBuf::from(format!("slow-{}.jsonl", trace.trace.to_hex()));
    std::fs::write(&path, text).ok()?;
    Some(path)
}

// ---------------------------------------------------------------------------
// Request context threaded into the job manager
// ---------------------------------------------------------------------------

/// What a request hands the job manager so job work lands in the right
/// trace: the hex trace id (stamped into frames, manifests, and result
/// documents) and the capture routing for worker threads the job
/// spawns. `Default` (all `None`) means "untraced" — in-process library
/// callers and tests that talk to the manager directly stay unchanged.
#[derive(Clone, Default)]
pub struct RequestCtx {
    /// Hex trace id of the owning request.
    pub trace_hex: Option<String>,
    /// The capture sink, for attaching spawned worker threads.
    pub capture: Option<Arc<TraceCapture>>,
    /// The owning request's trace buffer.
    pub trace: Option<Arc<RequestTrace>>,
    /// The request span's id, so job threads can nest their spans
    /// under it (`0` = untraced, spans stay roots).
    pub span: u64,
}

impl RequestCtx {
    /// Routes the calling thread into the request's trace for the
    /// guard's lifetime (no-op when untraced).
    pub fn attach(&self) -> Option<AttachGuard> {
        match (&self.capture, &self.trace) {
            (Some(capture), Some(trace)) => Some(capture.attach(trace)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_bound_cardinality() {
        assert_eq!(endpoint_label("/v1/jobs/job-123"), "/v1/jobs/{id}");
        assert_eq!(endpoint_label("/v1/trace/deadbeef"), "/v1/trace/{id}");
        assert_eq!(endpoint_label("/v1/check"), "/v1/check");
        assert_eq!(endpoint_label("/favicon.ico"), "other");
    }

    #[test]
    fn request_ring_moves_finished_entries_to_recent() {
        let ring = RequestRing::default();
        let token = ring.begin(RequestEntry {
            trace: "aa".into(),
            method: "POST".into(),
            endpoint: "/v1/check".into(),
            start_us: 10,
            status: 0,
            cache: None,
            bytes: 0,
            dur_us: 0,
            link: None,
        });
        let doc = ring.to_json();
        assert!(doc.contains("\"active\":[{"), "active entry listed: {doc}");
        ring.finish(token, 200, Some("miss".into()), 42, 1234, None);
        let doc = ring.to_json();
        assert!(doc.contains("\"active\":[]"), "no active entries: {doc}");
        assert!(doc.contains("\"status\":200") && doc.contains("\"cache\":\"miss\""), "{doc}");
        assert!(doc.contains("\"dur_us\":1234"), "{doc}");
    }

    #[test]
    fn trace_store_evicts_oldest() {
        let store = TraceStore::default();
        let mut first_hex = String::new();
        for i in 0..(TRACE_STORE_CAPACITY + 5) {
            let rt = RequestTrace::new(TraceId((i + 1) as u128));
            if i == 0 {
                first_hex = rt.trace.to_hex();
            }
            store.insert(rt);
        }
        assert!(store.get(&first_hex).is_none(), "oldest evicted");
        assert!(store.get(&TraceId((TRACE_STORE_CAPACITY + 5) as u128).to_hex()).is_some());
    }

    #[test]
    fn trace_store_appends_a_second_request_under_the_same_id() {
        let store = TraceStore::default();
        let id = TraceId(7);
        let probe = |span: u64| Event {
            kind: snet_obs::EventKind::SpanStart,
            name: "http.request".into(),
            id: span,
            parent: 0,
            thread: 0,
            t_us: 0,
            dur_us: 0,
            value: 0.0,
            attrs: Vec::new(),
        };
        let first = RequestTrace::new(id);
        first.record(&probe(1));
        store.insert(first);
        let second = RequestTrace::new(id);
        second.record(&probe(2));
        store.insert(second);
        let stored = store.get(&id.to_hex()).expect("id stays stored");
        assert_eq!(stored.events().len(), 2, "second request's events appended, not clobbered");
    }

    #[test]
    fn access_log_lines_are_one_json_object_each() {
        let dir = std::env::temp_dir().join("snetd-telemetry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("access-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = AccessLog::open(&path).unwrap();
        log.log(
            5,
            "abc",
            "POST",
            "/v1/check",
            200,
            Some("miss"),
            Some("ff"),
            Some("job-0"),
            10,
            20,
            None,
        );
        log.log(9, "def", "GET", "/healthz", 200, None, None, None, 2, 1, Some("abc"));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(&format!("{{\"schema\":\"{ACCESS_SCHEMA}\"")));
        assert!(lines[0].contains("\"cache\":\"miss\"") && lines[0].contains("\"job\":\"job-0\""));
        assert!(lines[1].contains("\"link\":\"abc\""));
    }
}
