//! The job manager: query IDs, a bounded-concurrency scheduler,
//! coalescing of identical in-flight checks, read-through/write-through
//! store integration, and per-job progress capture.
//!
//! ## Coalescing
//!
//! `/v1/check` requests are keyed by [`CanonicalHash::of_network`] —
//! computed *without* compiling (lower + canonical passes only, no
//! `ir.compile` span). Three outcomes, in cost order:
//!
//! 1. **warm hit** — the store already holds a verdict for the hash; the
//!    stored bytes are replayed verbatim, nothing is recompiled;
//! 2. **coalesced** — an identical request is already in flight; the
//!    caller blocks on that job and receives the same bytes, so N
//!    concurrent submissions of one canonical form compile exactly once;
//! 3. **miss** — this request leads: it compiles (the only `ir.compile`
//!    span), checks, persists, and fans the bytes out to any followers.
//!
//! ## Progress capture
//!
//! One process-global [`Sink`] is installed for the daemon's lifetime.
//! Job worker threads register their obs thread ordinal in a routing
//! table; the sink forwards that thread's events to the owning job's
//! [`JobObs`], where span ends named `ir.compile` are counted (the
//! compile-once proof surfaced in the job result) and selected counters
//! become ND-JSON [`ProgressFrame`]s for streaming clients. The sink
//! never calls back into the obs API.

use crate::telemetry::RequestCtx;
use serde::{Number, Serialize, Value};
use snet_core::api::{AdversaryRequest, ProgressFrame, SearchRequest};
use snet_core::api::{CacheState, FrameKind, JobState, JobStatus, API_SCHEMA};
use snet_core::ir::{CanonicalHash, Executor};
use snet_core::network::ComparatorNetwork;
use snet_core::verdict::{verdict_zero_one, Verdict};
use snet_obs::{Event, EventKind, RunManifest, Sink, SinkHandle};
use snet_search::{search, CancelToken, SearchConfig, SearchMode, SearchOutcome};
use snet_store::ArtifactStore;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// An application-level rejection: the HTTP status to answer with and a
/// human-readable reason (routed into an `ErrorBody`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status (`422` for semantic rejections, `503` when draining).
    pub status: u16,
    /// What was rejected and why.
    pub message: String,
}

impl ApiError {
    fn unprocessable(msg: impl Into<String>) -> ApiError {
        ApiError { status: 422, message: msg.into() }
    }

    fn draining() -> ApiError {
        ApiError { status: 503, message: "service is draining; not accepting new work".into() }
    }
}

/// Job manager configuration.
#[derive(Debug, Clone)]
pub struct JobsConfig {
    /// Artifact store for read-through/write-through caching and TT
    /// spills. `None` disables caching (every check recomputes).
    pub store: Option<ArtifactStore>,
    /// Concurrent search jobs; further submissions queue.
    pub max_jobs: usize,
    /// Worker threads per search job.
    pub search_threads: usize,
    /// Worker threads per exhaustive 0-1 check.
    pub check_threads: usize,
}

impl Default for JobsConfig {
    fn default() -> JobsConfig {
        JobsConfig { store: None, max_jobs: 2, search_threads: 1, check_threads: 1 }
    }
}

/// The answer to a check or adversary query: verdict bytes plus where
/// they came from. The bytes are byte-identical across miss/hit/
/// coalesced for one canonical form (the store replays what the miss
/// wrote; followers receive the leader's bytes).
#[derive(Debug, Clone)]
pub struct CheckAnswer {
    /// Provenance of the bytes.
    pub cache: CacheState,
    /// The verdict document, serialized (`snet-verdict/1`).
    pub body: Vec<u8>,
    /// The job that computed the bytes (`None` on a warm hit — no job
    /// ran).
    pub job: Option<String>,
    /// The canonical hash the answer is keyed by.
    pub hash: CanonicalHash,
    /// Hex trace id of the request under which the bytes were computed
    /// (`None` on a warm hit — no compute). For a coalesced follower
    /// this is the *leader's* trace: the server turns it into an
    /// `x-snet-link` header when it differs from the follower's own.
    pub trace: Option<String>,
}

// ---------------------------------------------------------------------------
// Per-job progress capture
// ---------------------------------------------------------------------------

/// One poll of a job's frame queue.
pub enum FramePoll {
    /// The next frame, in sequence order.
    Frame(ProgressFrame),
    /// Nothing new before the timeout; the job is still live.
    Idle,
    /// The queue is drained and the job will push no more frames.
    Closed,
}

struct ObsQueue {
    frames: VecDeque<ProgressFrame>,
    closed: bool,
}

/// A job's progress capture: the ND-JSON frame queue streaming clients
/// drain, plus the `ir.compile` span counter the routing sink maintains.
pub struct JobObs {
    job_id: String,
    trace: Option<String>,
    seq: AtomicU64,
    queue: Mutex<ObsQueue>,
    cv: Condvar,
    compile_spans: AtomicU64,
}

impl JobObs {
    fn new(job_id: &str, trace: Option<String>) -> Arc<JobObs> {
        Arc::new(JobObs {
            job_id: job_id.to_string(),
            trace,
            seq: AtomicU64::new(0),
            queue: Mutex::new(ObsQueue { frames: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            compile_spans: AtomicU64::new(0),
        })
    }

    /// Appends one frame (assigning the next sequence number) and wakes
    /// streaming clients. Frames pushed after [`close`](Self::close) are
    /// dropped.
    fn push(&self, kind: FrameKind) {
        let mut q = self.queue.lock().expect("job obs poisoned");
        if q.closed {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        q.frames.push_back(ProgressFrame {
            job: self.job_id.clone(),
            seq,
            trace: self.trace.clone(),
            kind,
        });
        drop(q);
        self.cv.notify_all();
    }

    /// Marks the stream complete; queued frames remain drainable.
    fn close(&self) {
        self.queue.lock().expect("job obs poisoned").closed = true;
        self.cv.notify_all();
    }

    /// Pops the next frame, waiting up to `timeout` for one to arrive.
    pub fn poll(&self, timeout: Duration) -> FramePoll {
        let mut q = self.queue.lock().expect("job obs poisoned");
        loop {
            if let Some(f) = q.frames.pop_front() {
                return FramePoll::Frame(f);
            }
            if q.closed {
                return FramePoll::Closed;
            }
            let (guard, res) = self.cv.wait_timeout(q, timeout).expect("job obs poisoned");
            q = guard;
            if res.timed_out() {
                return if let Some(f) = q.frames.pop_front() {
                    FramePoll::Frame(f)
                } else if q.closed {
                    FramePoll::Closed
                } else {
                    FramePoll::Idle
                };
            }
        }
    }

    /// `ir.compile` span ends attributed to this job so far.
    pub fn compile_spans(&self) -> u64 {
        self.compile_spans.load(Ordering::Relaxed)
    }

    /// Hex trace id of the request that created this job, if traced.
    /// Every frame the job pushes carries it, so the stream's trace id
    /// is stable no matter which client drains it.
    pub fn trace(&self) -> Option<&str> {
        self.trace.as_deref()
    }
}

/// Counter names worth forwarding as progress frames. Deliberately
/// coarse (round/spill granularity): per-node counters would flood the
/// stream without informing it.
fn frame_worthy(name: &str) -> bool {
    matches!(
        name,
        "search.rounds"
            | "search.nodes"
            | "search.tt.preloaded"
            | "search.tt.spilled"
            | "search.cancelled"
            | "check.inputs"
    )
}

/// Routing table: obs thread ordinal → the job capturing that thread.
type Routes = Mutex<HashMap<u64, Arc<JobObs>>>;

/// The process-global sink. Forwards each event to the job (if any) that
/// registered the emitting thread's ordinal. Must not call back into the
/// obs API (that would deadlock the drain), and it does not: it only
/// touches its own mutexes.
struct JobSink {
    routes: Arc<Routes>,
}

impl Sink for JobSink {
    fn event(&self, e: &Event) {
        let target = {
            let routes = self.routes.lock().expect("job routes poisoned");
            routes.get(&e.thread).cloned()
        };
        let Some(obs) = target else { return };
        match e.kind {
            EventKind::SpanEnd if e.name == "ir.compile" => {
                obs.compile_spans.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::Counter if frame_worthy(&e.name) => {
                obs.push(FrameKind::Event { name: e.name.clone(), value: e.value as u64 });
            }
            _ => {}
        }
    }
}

/// RAII registration of the current thread's events to a job.
struct RouteGuard {
    routes: Arc<Routes>,
    ordinal: u64,
}

impl RouteGuard {
    fn register(routes: &Arc<Routes>, obs: &Arc<JobObs>) -> RouteGuard {
        let ordinal = snet_obs::thread_ordinal();
        routes.lock().expect("job routes poisoned").insert(ordinal, obs.clone());
        RouteGuard { routes: routes.clone(), ordinal }
    }
}

impl Drop for RouteGuard {
    fn drop(&mut self) {
        self.routes.lock().expect("job routes poisoned").remove(&self.ordinal);
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

struct JobRecord {
    state: JobState,
    error: Option<String>,
    result: Option<Value>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// One unit of service work with a public identifier.
pub struct Job {
    /// The public id (`job-<seq>`).
    pub id: String,
    /// What it runs: `"check"` or `"search"`.
    pub kind: &'static str,
    /// Cooperative cancellation (fired by `DELETE` or shutdown).
    pub cancel: CancelToken,
    /// Progress capture; streaming clients poll this.
    pub obs: Arc<JobObs>,
    record: Mutex<JobRecord>,
    cv: Condvar,
}

impl Job {
    fn new(id: String, kind: &'static str, trace: Option<String>) -> Arc<Job> {
        let obs = JobObs::new(&id, trace);
        let job = Job {
            id,
            kind,
            cancel: CancelToken::new(),
            obs,
            record: Mutex::new(JobRecord {
                state: JobState::Queued,
                error: None,
                result: None,
                handle: None,
            }),
            cv: Condvar::new(),
        };
        job.obs.push(FrameKind::Lifecycle { state: JobState::Queued });
        Arc::new(job)
    }

    fn set_running(&self) {
        let mut r = self.record.lock().expect("job record poisoned");
        r.state = JobState::Running;
        drop(r);
        self.obs.push(FrameKind::Lifecycle { state: JobState::Running });
        self.cv.notify_all();
    }

    /// Moves the job to a terminal state, attaches the result/error,
    /// emits the final lifecycle frame, and closes the stream.
    fn finish(&self, state: JobState, result: Option<Value>, error: Option<String>) {
        debug_assert!(state.is_terminal());
        let mut r = self.record.lock().expect("job record poisoned");
        if r.state.is_terminal() {
            return; // first terminal transition wins
        }
        r.state = state;
        r.result = result;
        r.error = error;
        drop(r);
        self.obs.push(FrameKind::Lifecycle { state });
        self.obs.close();
        self.cv.notify_all();
        match state {
            JobState::Done => snet_obs::counter("jobs.completed", 1),
            JobState::Cancelled => snet_obs::counter("jobs.cancelled", 1),
            JobState::Failed => snet_obs::counter("jobs.failed", 1),
            _ => {}
        }
    }

    /// The job's current public status document.
    pub fn status(&self) -> JobStatus {
        let r = self.record.lock().expect("job record poisoned");
        JobStatus {
            schema: API_SCHEMA.to_string(),
            id: self.id.clone(),
            kind: self.kind.to_string(),
            state: r.state,
            error: r.error.clone(),
            result: r.result.clone(),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.record.lock().expect("job record poisoned").state
    }

    /// Blocks until the job reaches a terminal state (test/drain helper).
    pub fn wait_terminal(&self) -> JobStatus {
        let mut r = self.record.lock().expect("job record poisoned");
        while !r.state.is_terminal() {
            r = self.cv.wait(r).expect("job record poisoned");
        }
        drop(r);
        self.status()
    }
}

// ---------------------------------------------------------------------------
// Coalescing
// ---------------------------------------------------------------------------

/// `Ok((bytes, job, trace))`: the leader's verdict bytes, plus its job
/// id and hex trace id when a job actually ran (a leader that lost the
/// race to a just-completed store write replays the stored bytes
/// jobless and traceless). The trace lets coalesced followers link to
/// the leader's compile trace.
type InFlightOutcome = Result<(Vec<u8>, Option<String>, Option<String>), String>;

struct InFlight {
    slot: Mutex<Option<InFlightOutcome>>,
    cv: Condvar,
}

impl InFlight {
    fn new() -> Arc<InFlight> {
        Arc::new(InFlight { slot: Mutex::new(None), cv: Condvar::new() })
    }

    fn fill(&self, outcome: InFlightOutcome) {
        *self.slot.lock().expect("in-flight slot poisoned") = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> InFlightOutcome {
        let mut slot = self.slot.lock().expect("in-flight slot poisoned");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self.cv.wait(slot).expect("in-flight slot poisoned");
        }
    }
}

// ---------------------------------------------------------------------------
// The manager
// ---------------------------------------------------------------------------

struct ManagerInner {
    cfg: JobsConfig,
    routes: Arc<Routes>,
    sink: SinkHandle,
    jobs: Mutex<HashMap<String, Arc<Job>>>,
    in_flight: Mutex<HashMap<CanonicalHash, Arc<InFlight>>>,
    next_job: AtomicU64,
    draining: AtomicBool,
    /// Search slots in use; guarded by `slot_cv` for queueing.
    slots: Mutex<usize>,
    slot_cv: Condvar,
}

/// The service's job manager; cheap to clone, one per daemon.
#[derive(Clone)]
pub struct JobManager {
    inner: Arc<ManagerInner>,
}

impl JobManager {
    /// Builds the manager and installs the process-global routing sink
    /// (enabling obs emission — and with it the Prometheus registry
    /// mirror — for the daemon's lifetime).
    pub fn new(cfg: JobsConfig) -> JobManager {
        let routes: Arc<Routes> = Arc::new(Mutex::new(HashMap::new()));
        let sink = snet_obs::install_sink(Arc::new(JobSink { routes: routes.clone() }));
        JobManager {
            inner: Arc::new(ManagerInner {
                cfg,
                routes,
                sink,
                jobs: Mutex::new(HashMap::new()),
                in_flight: Mutex::new(HashMap::new()),
                next_job: AtomicU64::new(0),
                draining: AtomicBool::new(false),
                slots: Mutex::new(0),
                slot_cv: Condvar::new(),
            }),
        }
    }

    /// The configured artifact store, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.inner.cfg.store.as_ref()
    }

    fn create_job(&self, kind: &'static str, ctx: &RequestCtx) -> Result<Arc<Job>, ApiError> {
        if self.inner.draining.load(Ordering::Acquire) {
            return Err(ApiError::draining());
        }
        let id = format!("job-{}", self.inner.next_job.fetch_add(1, Ordering::Relaxed));
        let job = Job::new(id.clone(), kind, ctx.trace_hex.clone());
        self.inner.jobs.lock().expect("jobs map poisoned").insert(id, job.clone());
        snet_obs::counter("jobs.submitted", 1);
        Ok(job)
    }

    /// Looks up a job by id.
    pub fn job(&self, id: &str) -> Option<Arc<Job>> {
        self.inner.jobs.lock().expect("jobs map poisoned").get(id).cloned()
    }

    /// Fires a job's cancel token. Returns whether the id exists. The
    /// job finishes asynchronously (its worker observes the token at the
    /// next heartbeat and still spills its TT frontier).
    pub fn cancel(&self, id: &str) -> bool {
        match self.job(id) {
            Some(job) => {
                job.cancel.cancel();
                true
            }
            None => false,
        }
    }

    // -- /v1/check ---------------------------------------------------------

    /// Answers a check request: warm hit, coalesced follower, or leading
    /// miss (see the module docs). Blocks until the bytes are available.
    pub fn check(
        &self,
        net: &ComparatorNetwork,
        ctx: &RequestCtx,
    ) -> Result<CheckAnswer, ApiError> {
        let wires = net.wires();
        if !(1..=26).contains(&wires) {
            return Err(ApiError::unprocessable(format!(
                "check is exhaustive over 2^n inputs; n must be 1..=26 (got {wires})"
            )));
        }
        // Hash without compiling: of_network runs the same canonical
        // passes as the executor, so a warm entry keyed by a previous
        // compile is found here with no `ir.compile` span.
        let hash = CanonicalHash::of_network(net);
        if let Some(store) = &self.inner.cfg.store {
            if let Some((_, bytes)) = store.get_verdict(&hash) {
                return Ok(CheckAnswer {
                    cache: CacheState::Hit,
                    body: bytes,
                    job: None,
                    hash,
                    trace: None,
                });
            }
        }

        let (flight, leading) = {
            let mut map = self.inner.in_flight.lock().expect("in-flight map poisoned");
            match map.get(&hash) {
                Some(f) => (f.clone(), false),
                None => {
                    let f = InFlight::new();
                    map.insert(hash, f.clone());
                    (f, true)
                }
            }
        };

        if !leading {
            snet_obs::counter("jobs.coalesced", 1);
            let (body, job, trace) =
                flight.wait().map_err(|e| ApiError { status: 500, message: e })?;
            return Ok(CheckAnswer { cache: CacheState::Coalesced, body, job, hash, trace });
        }

        // Leadership claimed — but a previous leader may have completed
        // (and written the store) between our store miss and our map
        // insert. Re-check before compiling so one canonical form never
        // compiles twice, no matter the interleaving.
        if let Some(store) = &self.inner.cfg.store {
            if let Some((_, bytes)) = store.get_verdict(&hash) {
                self.inner.in_flight.lock().expect("in-flight map poisoned").remove(&hash);
                flight.fill(Ok((bytes.clone(), None, None)));
                return Ok(CheckAnswer {
                    cache: CacheState::Hit,
                    body: bytes,
                    job: None,
                    hash,
                    trace: None,
                });
            }
        }

        // Leader: run the compile + check inline on this thread under a
        // job record, then fan the bytes out. The in-flight entry is
        // removed before filling so a racing identical request after
        // completion becomes a store hit, not a stale follower.
        let outcome = match self.create_job("check", ctx) {
            Ok(job) => {
                let out = self.run_check_leader(&job, net, &hash);
                out.map(|body| (body, Some(job.id.clone()), ctx.trace_hex.clone()))
            }
            Err(e) => Err(e.message),
        };
        self.inner.in_flight.lock().expect("in-flight map poisoned").remove(&hash);
        flight.fill(outcome.clone());
        let (body, job, trace) = outcome.map_err(|e| ApiError { status: 500, message: e })?;
        Ok(CheckAnswer { cache: CacheState::Miss, body, job, hash, trace })
    }

    fn run_check_leader(
        &self,
        job: &Arc<Job>,
        net: &ComparatorNetwork,
        hash: &CanonicalHash,
    ) -> Result<Vec<u8>, String> {
        job.set_running();
        let guard = RouteGuard::register(&self.inner.routes, &job.obs);
        let threads = self.inner.cfg.check_threads.max(1);
        let computed = catch_unwind(AssertUnwindSafe(|| {
            let exec = Executor::compile(net); // the one `ir.compile` span
            verdict_zero_one(&exec, threads)
        }));
        drop(guard);
        let verdict: Verdict = match computed {
            Ok(v) => v,
            Err(panic) => {
                let msg = panic_message(panic);
                job.finish(JobState::Failed, None, Some(msg.clone()));
                return Err(msg);
            }
        };
        debug_assert_eq!(&verdict.hash, hash, "of_network and of_program must agree");
        let body = verdict.to_json().into_bytes();
        if let Some(store) = &self.inner.cfg.store {
            if let Err(e) = store.put_verdict(&verdict) {
                // The answer is still good; only the cache write failed.
                job.obs.push(FrameKind::Log { message: format!("store write failed: {e}") });
            }
        }
        let result = self.check_result_value(job, hash, &verdict);
        job.finish(JobState::Done, Some(result), None);
        Ok(body)
    }

    /// The check job's result document: the verdict summary plus a run
    /// manifest whose `ir.compile` extra is the number of compile spans
    /// attributed to this job — the compile-once proof for coalesced
    /// submissions.
    fn check_result_value(&self, job: &Arc<Job>, hash: &CanonicalHash, verdict: &Verdict) -> Value {
        let mut manifest = RunManifest::capture("snetd");
        manifest.push_extra("ir.compile", job.obs.compile_spans().to_string());
        manifest.push_extra("store.hash", hash.to_hex());
        if let Some(t) = job.obs.trace() {
            manifest.push_extra("trace_id", t.to_string());
        }
        let manifest_obj = Value::Object(
            manifest.fields().into_iter().map(|(k, v)| (k, Value::String(v))).collect(),
        );
        Value::Object(vec![
            ("hash".into(), Value::String(hash.to_hex())),
            ("sorting".into(), Value::Bool(verdict.is_sorting())),
            ("compile_spans".into(), Value::Number(Number::U(job.obs.compile_spans()))),
            ("manifest".into(), manifest_obj),
        ])
    }

    // -- /v1/search --------------------------------------------------------

    /// Validates and launches a search job; returns immediately with the
    /// queued job. The job acquires one of `max_jobs` slots before
    /// running.
    pub fn submit_search(
        &self,
        req: &SearchRequest,
        ctx: &RequestCtx,
    ) -> Result<Arc<Job>, ApiError> {
        let cfg = self.validate_search(req)?;
        let job = self.create_job("search", ctx)?;
        let mgr = self.clone();
        let handle = {
            let job = job.clone();
            let ctx = ctx.clone();
            std::thread::Builder::new()
                .name(format!("snetd-{}", job.id))
                .spawn(move || mgr.run_search_job(&job, cfg, &ctx))
                .map_err(|e| ApiError { status: 500, message: format!("cannot spawn job: {e}") })?
        };
        job.record.lock().expect("job record poisoned").handle = Some(handle);
        Ok(job)
    }

    fn validate_search(&self, req: &SearchRequest) -> Result<SearchConfig, ApiError> {
        let n = req.n as usize;
        if !(2..=16).contains(&n) {
            return Err(ApiError::unprocessable(format!("search supports n 2..=16 (got {n})")));
        }
        let mode = match req.mode.as_str() {
            "unrestricted" => SearchMode::Unrestricted,
            "shuffle-legal" => SearchMode::ShuffleLegal,
            other => {
                return Err(ApiError::unprocessable(format!(
                    "mode must be one of: unrestricted, shuffle-legal (got {other:?})"
                )))
            }
        };
        if mode == SearchMode::ShuffleLegal && !n.is_power_of_two() {
            return Err(ApiError::unprocessable(format!(
                "shuffle-legal search needs n = 2^l (got {n})"
            )));
        }
        let mut cfg = SearchConfig::new(n, mode);
        // The engine asserts max_depth >= floor; turn that into a 422
        // instead of a worker panic.
        let oracle = match mode {
            SearchMode::Unrestricted => snet_adversary::DepthOracle::unrestricted(n),
            SearchMode::ShuffleLegal => snet_adversary::DepthOracle::shuffle_legal(n),
        };
        let floor = oracle.network_floor();
        if let Some(d) = req.max_depth {
            let d = d as usize;
            if d < floor {
                return Err(ApiError::unprocessable(format!(
                    "max_depth {d} is below the admissible floor {floor} for n={n}"
                )));
            }
            cfg.max_depth = d;
        }
        cfg.threads = match req.threads {
            Some(0) | None => self.inner.cfg.search_threads.max(1),
            Some(t) => (t as usize).min(64),
        };
        cfg.store = self.inner.cfg.store.clone();
        Ok(cfg)
    }

    fn run_search_job(&self, job: &Arc<Job>, mut cfg: SearchConfig, ctx: &RequestCtx) {
        // The job thread outlives the HTTP exchange that submitted it;
        // route its events (and, by span descent, its engine workers')
        // into the submitting request's trace for the job's duration,
        // and nest everything it emits under the request span so the
        // stored tree reads client → request → job.
        let _trace_guard = ctx.attach();
        let _job_span = snet_obs::span_under("job.run", ctx.span).attr("job", &job.id);
        // Queue for a slot; shutdown cancels queued jobs instead of
        // starting them.
        let running = {
            let mut used = self.inner.slots.lock().expect("slot pool poisoned");
            loop {
                if job.cancel.is_cancelled() || self.inner.draining.load(Ordering::Acquire) {
                    drop(used);
                    job.finish(JobState::Cancelled, None, None);
                    return;
                }
                if *used < self.inner.cfg.max_jobs.max(1) {
                    *used += 1;
                    break *used;
                }
                used = self.inner.slot_cv.wait(used).expect("slot pool poisoned");
            }
        };
        snet_obs::gauge("jobs.running", running as f64);
        job.set_running();
        cfg.cancel = Some(job.cancel.clone());
        let guard = RouteGuard::register(&self.inner.routes, &job.obs);
        let outcome = catch_unwind(AssertUnwindSafe(|| search(&cfg)));
        drop(guard);
        match outcome {
            Ok(out) => {
                let state = if out.cancelled { JobState::Cancelled } else { JobState::Done };
                // A cancelled search still reports its partial totals and
                // spill — the frontier it persisted is resumable.
                job.finish(state, Some(search_result_value(&out)), None);
            }
            Err(panic) => {
                job.finish(JobState::Failed, None, Some(panic_message(panic)));
            }
        }
        let mut used = self.inner.slots.lock().expect("slot pool poisoned");
        *used = used.saturating_sub(1);
        snet_obs::gauge("jobs.running", *used as f64);
        drop(used);
        self.inner.slot_cv.notify_all();
    }

    // -- /v1/adversary -----------------------------------------------------

    /// Answers an adversary request inline: builds the shuffle network,
    /// replays a cached witness verdict when the store has one, or runs
    /// Theorem 4.1 and caches the refutation it finds.
    pub fn adversary(
        &self,
        req: &AdversaryRequest,
        ctx: &RequestCtx,
    ) -> Result<CheckAnswer, ApiError> {
        let n = req.n as usize;
        if !(2..=1024).contains(&n) || !n.is_power_of_two() {
            return Err(ApiError::unprocessable(format!(
                "adversary networks need n = 2^l in 2..=1024 (got {n})"
            )));
        }
        if req.stages.is_empty() {
            return Err(ApiError::unprocessable("adversary needs at least one stage"));
        }
        for (i, s) in req.stages.iter().enumerate() {
            if s.len() != n / 2 {
                return Err(ApiError::unprocessable(format!(
                    "stage {i} has {} ops; every stage needs n/2 = {}",
                    s.len(),
                    n / 2
                )));
            }
        }
        let l = n.trailing_zeros() as usize;
        let k = req.k.map(|k| k as usize).unwrap_or(l);
        let shuffle = snet_topology::ShuffleNetwork::new(n, req.stages.clone());
        let ird = shuffle.to_iterated_reverse_delta();
        let net = ird.to_network();
        let hash = CanonicalHash::of_network(&net);

        // A cached adversary witness replays verbatim; like the CLI, a
        // cached verdict of a different kind is ignored rather than
        // misreported.
        if let Some(store) = &self.inner.cfg.store {
            if let Some((v, bytes)) = store.get_verdict(&hash) {
                if matches!(v.kind, snet_core::verdict::VerdictKind::AdversaryWitness { .. }) {
                    return Ok(CheckAnswer {
                        cache: CacheState::Hit,
                        body: bytes,
                        job: None,
                        hash,
                        trace: None,
                    });
                }
            }
        }

        let out = snet_adversary::theorem41(&ird, k);
        if out.d_set.len() < 2 {
            return Err(ApiError::unprocessable(format!(
                "adversary exhausted: |D| = {} after {} blocks — no witness at this depth \
                 (the network may sort)",
                out.d_set.len(),
                out.blocks.len()
            )));
        }
        let refutation = snet_adversary::refute(&net, &out.input_pattern)
            .map_err(|e| ApiError { status: 500, message: format!("refute failed: {e:?}") })?;
        refutation.verify(&net).map_err(|e| ApiError {
            status: 500,
            message: format!("internal: witness failed verification: {e}"),
        })?;
        let verdict = refutation.to_verdict(&net);
        let body = verdict.to_json().into_bytes();
        if let Some(store) = &self.inner.cfg.store {
            let _ = store.put_verdict(&verdict);
        }
        Ok(CheckAnswer {
            cache: CacheState::Miss,
            body,
            job: None,
            hash,
            trace: ctx.trace_hex.clone(),
        })
    }

    // -- lifecycle ---------------------------------------------------------

    /// Whether the manager has begun draining.
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting work, cancel every live job (their
    /// workers observe the token, spill their TT frontiers, and finish),
    /// join all job threads, then uninstall the sink and flush.
    pub fn shutdown(&self) {
        if self.inner.draining.swap(true, Ordering::AcqRel) {
            return; // once
        }
        self.inner.slot_cv.notify_all();
        let jobs: Vec<Arc<Job>> = {
            let map = self.inner.jobs.lock().expect("jobs map poisoned");
            map.values().cloned().collect()
        };
        for job in &jobs {
            job.cancel.cancel();
        }
        for job in &jobs {
            let handle = job.record.lock().expect("job record poisoned").handle.take();
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
        snet_obs::remove_sink(self.inner.sink);
        snet_obs::flush();
    }
}

/// The search job's terminal result document.
fn search_result_value(out: &SearchOutcome) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("n".into(), Value::Number(Number::U(out.n as u64))),
        ("mode".into(), Value::String(out.mode.name().to_string())),
        ("floor".into(), Value::Number(Number::U(out.floor as u64))),
        ("max_depth".into(), Value::Number(Number::U(out.max_depth as u64))),
        ("cancelled".into(), Value::Bool(out.cancelled)),
        ("rounds".into(), Value::Number(Number::U(out.rounds.len() as u64))),
        ("nodes".into(), Value::Number(Number::U(out.totals.nodes))),
        ("tt_preloaded".into(), Value::Number(Number::U(out.tt_preloaded))),
        ("tt_spilled".into(), Value::Number(Number::U(out.tt_spilled))),
    ];
    if let Some(d) = out.optimal_depth {
        fields.push(("optimal_depth".into(), Value::Number(Number::U(d as u64))));
    }
    if let Some(v) = &out.verdict {
        fields.push(("verdict".into(), v.serialize()));
    }
    if let Some(net) = &out.network {
        fields.push(("network".into(), net.serialize()));
    }
    Value::Object(fields)
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}
