//! End-to-end service tests over real TCP: one in-process daemon per
//! test on an ephemeral port, exercised through the blocking client.
//!
//! The load-bearing assertions: a cold check compiles, verifies, and
//! persists; an identical warm check is a store hit whose bytes are
//! identical to the cold response without re-checking; concurrent
//! identical submissions compile exactly once (proved by the `ir.compile`
//! count in the leader job's manifest); `/v1/search` streams ND-JSON
//! progress frames to completion; `/metrics` stays valid Prometheus text
//! while jobs are in flight; and a drain cancels live jobs while leaving
//! a resumable search spill behind.

use serde::Value;
use snet_core::api::{
    AdversaryRequest, CheckRequest, FrameKind, JobState, JobStatus, ProgressFrame, SearchRequest,
};
use snet_core::element::{Element, ElementKind};
use snet_core::network::{ComparatorNetwork, Level};
use snet_core::verdict::{Verdict, VerdictKind};
use snet_service::{client, spawn, ServeConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snetd-e2e-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn daemon(tag: &str) -> (ServerHandle, String, PathBuf) {
    let root = scratch_root(tag);
    let cfg = ServeConfig { store: Some(root.clone()), ..ServeConfig::default() };
    let handle = spawn(cfg).expect("daemon binds an ephemeral port");
    let addr = handle.addr.to_string();
    (handle, addr, root)
}

/// Odd-even transposition sort on `n` wires: `n` alternating brick
/// layers — depth-wasteful but certainly sorting, and its size scales
/// the check's work for the coalescing race below.
fn odd_even_transposition(n: u32) -> ComparatorNetwork {
    let levels = (0..n)
        .map(|round| {
            let mut elems = Vec::new();
            let mut w = round % 2;
            while w + 1 < n {
                elems.push(Element::cmp(w, w + 1));
                w += 2;
            }
            Level::of_elements(elems)
        })
        .collect();
    ComparatorNetwork::new(n as usize, levels).expect("valid brick network")
}

fn check_body(net: &ComparatorNetwork) -> Vec<u8> {
    serde_json::to_string(&CheckRequest { network: net.clone() })
        .expect("request serializes")
        .into_bytes()
}

fn obj_get<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    v.as_object().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
}

#[test]
fn cold_check_computes_and_warm_check_replays_bytes_without_recompiling() {
    let (handle, addr, root) = daemon("warm");
    let body = check_body(&odd_even_transposition(8));

    let cold = client::request(&addr, "POST", "/v1/check", Some(&body)).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-snet-cache"), Some("miss"));
    let verdict = Verdict::parse(&cold.text()).expect("body is a verdict document");
    assert!(verdict.is_sorting(), "odd-even transposition sorts");
    let job_id = cold.header("x-snet-job").expect("a miss reports its job").to_string();

    let warm = client::request(&addr, "POST", "/v1/check", Some(&body)).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-snet-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "warm hit replays the stored bytes verbatim");
    assert_eq!(warm.header("x-snet-job"), None, "no job runs on a warm hit");

    // The cold job's result carries the compile-once proof: exactly one
    // `ir.compile` span was attributed to it, echoed in its manifest.
    let status_resp = client::request(&addr, "GET", &format!("/v1/jobs/{job_id}"), None).unwrap();
    assert_eq!(status_resp.status, 200);
    let status = JobStatus::parse(&status_resp.text()).unwrap();
    assert_eq!(status.state, JobState::Done);
    let result = status.result.expect("done job carries a result");
    let manifest = obj_get(&result, "manifest").expect("result embeds the run manifest");
    assert_eq!(
        obj_get(manifest, "ir.compile").and_then(Value::as_str),
        Some("1"),
        "the cold check compiled exactly once"
    );

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_identical_checks_compile_exactly_once() {
    let (handle, addr, root) = daemon("coalesce");
    // Big enough that the exhaustive check leaves a real window for the
    // followers to land while the leader is mid-flight.
    let body = Arc::new(check_body(&odd_even_transposition(20)));

    const CLIENTS: usize = 4;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for _ in 0..CLIENTS {
        let addr = addr.clone();
        let body = body.clone();
        let barrier = barrier.clone();
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            let resp = client::request(&addr, "POST", "/v1/check", Some(&body)).unwrap();
            assert_eq!(resp.status, 200);
            (
                resp.header("x-snet-cache").unwrap().to_string(),
                resp.header("x-snet-job").map(str::to_string),
                resp.body,
            )
        }));
    }
    let answers: Vec<(String, Option<String>, Vec<u8>)> =
        threads.into_iter().map(|t| t.join().unwrap()).collect();

    for (_, _, bytes) in &answers {
        assert_eq!(bytes, &answers[0].2, "every client receives identical bytes");
    }
    let misses = answers.iter().filter(|(c, _, _)| c == "miss").count();
    assert_eq!(misses, 1, "one canonical form has exactly one leading miss");
    let jobs: std::collections::BTreeSet<&String> =
        answers.iter().filter_map(|(_, j, _)| j.as_ref()).collect();
    assert_eq!(jobs.len(), 1, "miss and coalesced answers share one job");

    // The shared job compiled exactly once, even with 4 concurrent
    // submissions of the same canonical form.
    let job_id = jobs.into_iter().next().unwrap();
    let status_resp = client::request(&addr, "GET", &format!("/v1/jobs/{job_id}"), None).unwrap();
    let status = JobStatus::parse(&status_resp.text()).unwrap();
    let result = status.result.expect("check job result");
    let compiles = obj_get(&result, "compile_spans").and_then(Value::as_u64);
    assert_eq!(compiles, Some(1), "coalesced submissions share one ir.compile span");

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn search_streams_progress_frames_and_metrics_stay_valid_midflight() {
    let (handle, addr, root) = daemon("stream");
    let req =
        SearchRequest { n: 4, mode: "unrestricted".into(), max_depth: None, threads: Some(2) };
    let body = serde_json::to_string(&req).unwrap();

    let mut frames: Vec<ProgressFrame> = Vec::new();
    let mut metrics_checked = false;
    let resp =
        client::stream_lines(&addr, "POST", "/v1/search", Some(body.as_bytes()), &mut |line| {
            frames.push(ProgressFrame::parse_line(line).expect("every line is one frame"));
            if !metrics_checked {
                // Scrape /metrics over a second connection while this job is
                // in flight; the exposition must parse cleanly.
                let m = client::request(&addr, "GET", "/metrics", None).unwrap();
                assert_eq!(m.status, 200);
                assert!(m.header("content-type").unwrap().starts_with("text/plain"));
                let parsed = snet_obs::promtext::parse(&m.text()).expect("valid Prometheus text");
                assert!(
                    parsed.series.iter().any(|s| s.name == "snet_httpd_requests_total"),
                    "service counters are exposed"
                );
                metrics_checked = true;
            }
            true
        })
        .unwrap();

    assert_eq!(resp.status, 200);
    assert!(metrics_checked, "at least one frame arrived while the job was live");
    let job_id = resp.header("x-snet-job").expect("stream reports its job").to_string();
    assert!(frames.len() >= 3, "lifecycle alone yields 3+ frames, got {}", frames.len());
    for (i, f) in frames.iter().enumerate() {
        assert_eq!(f.seq, i as u64, "sequence numbers are gapless");
        assert_eq!(f.job, job_id);
    }
    assert_eq!(frames.first().unwrap().kind, FrameKind::Lifecycle { state: JobState::Queued });
    assert_eq!(frames.last().unwrap().kind, FrameKind::Lifecycle { state: JobState::Done });

    let status_resp = client::request(&addr, "GET", &format!("/v1/jobs/{job_id}"), None).unwrap();
    let status = JobStatus::parse(&status_resp.text()).unwrap();
    assert_eq!(status.state, JobState::Done);
    let result = status.result.expect("search result document");
    assert_eq!(
        obj_get(&result, "optimal_depth").and_then(Value::as_u64),
        Some(3),
        "4 wires sort in depth 3"
    );

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn adversary_witness_is_cached_and_replayed() {
    let (handle, addr, root) = daemon("adversary");
    // The canonical butterfly: lg n all-`+` shuffle stages on 8 wires —
    // exactly the (lg n, l)-network the Section 4 adversary defeats.
    let req = AdversaryRequest { n: 8, stages: vec![vec![ElementKind::Cmp; 4]; 3], k: None };
    let body = serde_json::to_string(&req).unwrap();

    let cold = client::request(&addr, "POST", "/v1/adversary", Some(body.as_bytes())).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-snet-cache"), Some("miss"));
    let verdict = Verdict::parse(&cold.text()).unwrap();
    assert!(
        matches!(verdict.kind, VerdictKind::AdversaryWitness { .. }),
        "the adversary answers with a witness verdict"
    );

    let warm = client::request(&addr, "POST", "/v1/adversary", Some(body.as_bytes())).unwrap();
    assert_eq!(warm.header("x-snet-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "cached witness replays byte-identically");

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rejections_map_to_http_statuses() {
    let (handle, addr, root) = daemon("reject");

    // Unknown route and unknown job.
    let r = client::request(&addr, "GET", "/v1/nope", None).unwrap();
    assert_eq!(r.status, 404);
    let r = client::request(&addr, "GET", "/v1/jobs/job-999", None).unwrap();
    assert_eq!(r.status, 404);

    // Semantic rejections are 422 with an error body.
    let bad = SearchRequest { n: 4, mode: "warp".into(), max_depth: None, threads: None };
    let body = serde_json::to_string(&bad).unwrap();
    let r = client::request(&addr, "POST", "/v1/search", Some(body.as_bytes())).unwrap();
    assert_eq!(r.status, 422);
    assert!(r.text().contains("unrestricted"), "the error names the valid modes");

    let bad =
        SearchRequest { n: 4, mode: "unrestricted".into(), max_depth: Some(1), threads: None };
    let body = serde_json::to_string(&bad).unwrap();
    let r = client::request(&addr, "POST", "/v1/search", Some(body.as_bytes())).unwrap();
    assert_eq!(r.status, 422, "a depth below the floor is rejected, not a worker panic");

    // Malformed JSON bodies are 422 too.
    let r = client::request(&addr, "POST", "/v1/check", Some(b"{nope")).unwrap();
    assert_eq!(r.status, 422);

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

/// A deterministic client-side trace header: distinct per `i`, valid
/// per the `x-snet-trace` grammar.
fn trace_header_for(i: u64) -> (String, String) {
    let trace = format!("{:032x}", 0xace0_0000u64 + i);
    (trace.clone(), format!("{trace}-{:016x}", i + 1))
}

#[test]
fn coalesced_checks_link_rider_traces_to_the_leader() {
    let (handle, addr, root) = daemon("tracelink");
    // Same canonical form from four traced clients at once: one leader
    // compiles under its own trace, riders link to it.
    let body = Arc::new(check_body(&odd_even_transposition(20)));

    const CLIENTS: usize = 4;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for i in 0..CLIENTS {
        let addr = addr.clone();
        let body = body.clone();
        let barrier = barrier.clone();
        threads.push(std::thread::spawn(move || {
            let (trace, header) = trace_header_for(i as u64);
            barrier.wait();
            let resp = client::request_with(
                &addr,
                "POST",
                "/v1/check",
                Some(&body),
                &[("x-snet-trace", header.as_str())],
            )
            .unwrap();
            assert_eq!(resp.status, 200);
            let echoed = resp.header("x-snet-trace").expect("every response echoes its trace");
            assert!(
                echoed.starts_with(&trace),
                "the response trace is the one this client sent (got {echoed})"
            );
            (
                trace,
                resp.header("x-snet-cache").unwrap().to_string(),
                resp.header("x-snet-link").map(str::to_string),
            )
        }));
    }
    let answers: Vec<(String, String, Option<String>)> =
        threads.into_iter().map(|t| t.join().unwrap()).collect();

    let leaders: Vec<&(String, String, Option<String>)> =
        answers.iter().filter(|(_, c, _)| c == "miss").collect();
    assert_eq!(leaders.len(), 1, "one leading miss");
    let (leader_trace, _, leader_link) = leaders[0];
    assert_eq!(leader_link.as_deref(), None, "the leader links to nothing — it IS the trace");
    for (trace, cache, link) in &answers {
        if cache == "coalesced" {
            assert_eq!(
                link.as_deref(),
                Some(leader_trace.as_str()),
                "rider {trace} links to the leader's compile trace"
            );
        }
    }

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn traced_search_stamps_frames_and_lands_in_debug_ring_and_trace_store() {
    let (handle, addr, root) = daemon("tracing");
    let (trace, header) = trace_header_for(0x900d);
    let req =
        SearchRequest { n: 4, mode: "unrestricted".into(), max_depth: None, threads: Some(2) };
    let body = serde_json::to_string(&req).unwrap();

    let mut frames: Vec<ProgressFrame> = Vec::new();
    let resp = client::stream_lines_with(
        &addr,
        "POST",
        "/v1/search",
        Some(body.as_bytes()),
        &[("x-snet-trace", header.as_str())],
        &mut |line| {
            frames.push(ProgressFrame::parse_line(line).expect("every line is one frame"));
            true
        },
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.header("x-snet-trace").unwrap().starts_with(&trace));
    assert!(frames.len() >= 3);
    for f in &frames {
        assert_eq!(
            f.trace.as_deref(),
            Some(trace.as_str()),
            "every progress frame carries the submitting request's trace id"
        );
    }
    // The job result's manifest names the same trace.
    let job_id = resp.header("x-snet-job").unwrap().to_string();
    let status_resp = client::request(&addr, "GET", &format!("/v1/jobs/{job_id}"), None).unwrap();
    let status = JobStatus::parse(&status_resp.text()).unwrap();
    assert_eq!(status.state, JobState::Done);

    // The finished request is visible in the tracez-style ring with its
    // trace id, endpoint, status, and latency.
    let debug = client::request(&addr, "GET", "/v1/debug/requests", None).unwrap();
    assert_eq!(debug.status, 200);
    let text = debug.text();
    assert!(text.contains(&format!("\"trace\":\"{trace}\"")), "ring lists the trace: {text}");
    assert!(text.contains("\"endpoint\":\"/v1/search\""), "ring names the endpoint: {text}");
    assert!(text.contains("\"dur_us\":"), "ring reports latency: {text}");

    // The stored span tree is fetchable by trace id; telemetry between
    // response completion and trace-store insert is asynchronous, so
    // poll briefly.
    let mut stored = None;
    for _ in 0..50 {
        let r = client::request(&addr, "GET", &format!("/v1/trace/{trace}"), None).unwrap();
        if r.status == 200 {
            stored = Some(r);
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let stored = stored.expect("the request trace lands in the trace store");
    let events = snet_obs::report::parse_events(&stored.text()).expect("stored trace parses");
    assert!(
        events.iter().any(|e| e.name == "http.request"),
        "the stored trace holds the server's request span"
    );

    // An unknown id is a clean 404, not an empty document.
    let missing =
        client::request(&addr, "GET", "/v1/trace/ffffffffffffffffffffffffffffffff", None).unwrap();
    assert_eq!(missing.status, 404);

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn frame_traces_are_stable_across_miss_and_hit_deliveries() {
    let (handle, addr, root) = daemon("stable");
    let body = check_body(&odd_even_transposition(8));
    let (trace, header) = trace_header_for(0xbead);

    // Miss: computed under the submitted trace.
    let cold = client::request_with(
        &addr,
        "POST",
        "/v1/check",
        Some(&body),
        &[("x-snet-trace", header.as_str())],
    )
    .unwrap();
    assert_eq!(cold.header("x-snet-cache"), Some("miss"));
    assert!(cold.header("x-snet-trace").unwrap().starts_with(&trace));
    let job_id = cold.header("x-snet-job").unwrap().to_string();

    // The job's manifest pins the trace the bytes were computed under.
    let status_resp = client::request(&addr, "GET", &format!("/v1/jobs/{job_id}"), None).unwrap();
    let status = JobStatus::parse(&status_resp.text()).unwrap();
    let result = status.result.expect("check job result");
    let manifest = obj_get(&result, "manifest").expect("result embeds the run manifest");
    assert_eq!(
        obj_get(manifest, "trace_id").and_then(Value::as_str),
        Some(trace.as_str()),
        "the job manifest records the computing request's trace"
    );

    // Hit: a different trace replays the same bytes; its response keeps
    // its own trace id and claims no link (nothing was computed).
    let (trace2, header2) = trace_header_for(0xfeed);
    let warm = client::request_with(
        &addr,
        "POST",
        "/v1/check",
        Some(&body),
        &[("x-snet-trace", header2.as_str())],
    )
    .unwrap();
    assert_eq!(warm.header("x-snet-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body);
    assert!(warm.header("x-snet-trace").unwrap().starts_with(&trace2));
    assert_eq!(warm.header("x-snet-link"), None, "a warm hit computed nothing to link to");

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn drain_cancels_live_search_and_leaves_a_resumable_spill() {
    let (handle, addr, root) = daemon("drain");
    // Deep unrestricted n=8 search: runs long enough in a debug build
    // that the drain always lands mid-flight.
    let req =
        SearchRequest { n: 8, mode: "unrestricted".into(), max_depth: None, threads: Some(2) };
    let body = serde_json::to_string(&req).unwrap();

    let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
    let streamer = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut frames: Vec<ProgressFrame> = Vec::new();
            let mut signalled = false;
            let resp = client::stream_lines(
                &addr,
                "POST",
                "/v1/search",
                Some(body.as_bytes()),
                &mut |line| {
                    let f = ProgressFrame::parse_line(line).unwrap();
                    if !signalled && f.kind == (FrameKind::Lifecycle { state: JobState::Running }) {
                        signalled = true;
                        let _ = started_tx.send(());
                    }
                    frames.push(f);
                    true
                },
            )
            .unwrap();
            (resp, frames)
        })
    };

    started_rx.recv_timeout(Duration::from_secs(60)).expect("the search job reaches Running");
    // Let the workers expand some nodes so the spill has facts in it.
    std::thread::sleep(Duration::from_millis(300));
    handle.shutdown().expect("drain completes cleanly");

    let (resp, frames) = streamer.join().unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        frames.last().unwrap().kind,
        FrameKind::Lifecycle { state: JobState::Cancelled },
        "the drain cancels the live job and the stream reports it"
    );

    // The cancelled search still spilled its transposition frontier:
    // a resumed run on the same store warm-starts from it.
    let store = snet_store::ArtifactStore::open(&root).unwrap();
    let spill = snet_store::load_tt_facts(&store, "search-tt/unrestricted/n=8");
    assert!(spill.is_some(), "cancellation preserves the TT spill");

    let _ = std::fs::remove_dir_all(&root);
}
