//! Wire-layer torture tests for the hand-rolled HTTP parser: malformed
//! request lines, byte limits enforced with `413` *before* buffering,
//! pipelined requests parsed one per call, and a property test that the
//! ND-JSON progress-frame encoding round-trips through the chunked
//! writer and the client's line splitter.
//!
//! Like the obs property tests, proptest supplies only a seed and a
//! local LCG generates the frame families, which keeps shrunk
//! counterexamples small with the vendored proptest stand-in.

use proptest::prelude::*;
use snet_core::api::{FrameKind, JobState, ProgressFrame};
use snet_service::http::{read_request, ChunkedWriter, HttpError, Limits, ReadOutcome, Request};
use snet_service::telemetry::extract_trace;
use std::io::BufReader;

fn parse_one(bytes: &[u8]) -> Result<ReadOutcome, HttpError> {
    read_request(&mut BufReader::new(bytes), &Limits::default())
}

fn reject_status(bytes: &[u8]) -> u16 {
    match parse_one(bytes) {
        Err(e) => e.status,
        Ok(other) => {
            panic!("expected a rejection for {:?}, got {other:?}", String::from_utf8_lossy(bytes))
        }
    }
}

#[test]
fn malformed_request_lines_are_400() {
    // Lower-case / mixed-case methods.
    assert_eq!(reject_status(b"get / HTTP/1.1\r\n\r\n"), 400);
    assert_eq!(reject_status(b"Get / HTTP/1.1\r\n\r\n"), 400);
    // Missing pieces.
    assert_eq!(reject_status(b"GET\r\n\r\n"), 400);
    assert_eq!(reject_status(b"GET /healthz\r\n\r\n"), 400);
    // Too many fields.
    assert_eq!(reject_status(b"GET / HTTP/1.1 extra\r\n\r\n"), 400);
    // Target must be origin-form.
    assert_eq!(reject_status(b"GET healthz HTTP/1.1\r\n\r\n"), 400);
    assert_eq!(reject_status(b"GET http://x/ HTTP/1.1\r\n\r\n"), 400);
    // Header lines without a colon, or with spaced names.
    assert_eq!(reject_status(b"GET / HTTP/1.1\r\nnot a header\r\n\r\n"), 400);
    assert_eq!(reject_status(b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n"), 400);
    // Truncated mid-head.
    assert_eq!(reject_status(b"GET / HTTP/1.1\r\nhost: x"), 400);
    // Non-UTF-8 head.
    assert_eq!(reject_status(b"GET /\xff HTTP/1.1\r\n\r\n"), 400);
}

#[test]
fn unsupported_versions_are_505() {
    assert_eq!(reject_status(b"GET / HTTP/2.0\r\n\r\n"), 505);
    assert_eq!(reject_status(b"GET / HTTP/0.9\r\n\r\n"), 505);
    // 1.0 keep-alives are accepted (curl --http1.0 works).
    assert!(matches!(parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap(), ReadOutcome::Request(_)));
}

#[test]
fn oversized_heads_and_bodies_are_413() {
    let tight = Limits { max_header_bytes: 128, max_body_bytes: 64 };

    // A single header that blows the head cap.
    let mut big_head = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
    big_head.extend(std::iter::repeat_n(b'a', 4096));
    big_head.extend_from_slice(b"\r\n\r\n");
    let err = read_request(&mut BufReader::new(&big_head[..]), &tight).unwrap_err();
    assert_eq!(err.status, 413);

    // An oversized Content-Length is refused from the header alone: the
    // parser must not buffer a body it already knows is over the limit,
    // so a *lying* Content-Length with no body at all still rejects.
    let decl_only = b"POST /v1/check HTTP/1.1\r\ncontent-length: 999999\r\n\r\n";
    let err = read_request(&mut BufReader::new(&decl_only[..]), &tight).unwrap_err();
    assert_eq!(err.status, 413);

    // At the limit is fine.
    let mut ok = b"POST / HTTP/1.1\r\ncontent-length: 64\r\n\r\n".to_vec();
    ok.extend(std::iter::repeat_n(b'b', 64));
    match read_request(&mut BufReader::new(&ok[..]), &tight).unwrap() {
        ReadOutcome::Request(r) => assert_eq!(r.body.len(), 64),
        other => panic!("expected request, got {other:?}"),
    }
}

#[test]
fn chunked_uploads_and_bad_lengths_are_rejected() {
    assert_eq!(
        reject_status(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
        411,
        "chunked uploads are refused so the memory bound follows from content-length"
    );
    assert_eq!(reject_status(b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n"), 400);
    assert_eq!(reject_status(b"POST / HTTP/1.1\r\ncontent-length: -5\r\n\r\n"), 400);
    // Body shorter than declared: the peer vanished mid-body.
    assert_eq!(reject_status(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc"), 400);
}

#[test]
fn pipelined_requests_parse_one_per_call_in_order() {
    let wire = b"POST /v1/check HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc\
                 GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n";
    let mut r = BufReader::new(&wire[..]);
    let limits = Limits::default();

    let first = match read_request(&mut r, &limits).unwrap() {
        ReadOutcome::Request(req) => req,
        other => panic!("expected first request, got {other:?}"),
    };
    assert_eq!(first.method, "POST");
    assert_eq!(first.path, "/v1/check");
    assert_eq!(first.body, b"abc");
    assert!(!first.wants_close());

    let second = match read_request(&mut r, &limits).unwrap() {
        ReadOutcome::Request(req) => req,
        other => panic!("expected second request, got {other:?}"),
    };
    assert_eq!(second.method, "GET");
    assert_eq!(second.path, "/healthz");
    assert!(second.body.is_empty());
    assert!(second.wants_close(), "the exact byte boundary between requests was kept");

    assert!(matches!(read_request(&mut r, &limits).unwrap(), ReadOutcome::Eof));
}

#[test]
fn bare_lf_requests_are_tolerated() {
    match parse_one(b"GET /healthz HTTP/1.1\nhost: x\n\n").unwrap() {
        ReadOutcome::Request(r) => {
            assert_eq!(r.path, "/healthz");
            assert_eq!(r.header("host"), Some("x"));
        }
        other => panic!("expected request, got {other:?}"),
    }
}

// --- x-snet-trace extraction ---------------------------------------------

fn request_with_headers(headers: &str) -> Request {
    let wire = format!("GET /v1/debug/requests HTTP/1.1\r\n{headers}\r\n");
    match parse_one(wire.as_bytes()).expect("trace headers must never fail parsing") {
        ReadOutcome::Request(r) => r,
        other => panic!("expected a request, got {other:?}"),
    }
}

#[test]
fn valid_trace_header_is_adopted() {
    let req =
        request_with_headers("x-snet-trace: 0123456789abcdef0123456789abcdef-00000000000000aa\r\n");
    let (ctx, forwarded) = extract_trace(&req);
    assert!(forwarded);
    assert_eq!(ctx.trace.to_hex(), "0123456789abcdef0123456789abcdef");
    assert_eq!(ctx.parent_span, 0xaa);
}

/// A client that garbles its trace header still gets its request
/// answered: telemetry degrades to a fresh server-generated trace,
/// never a 400.
#[test]
fn malformed_trace_headers_degrade_to_fresh_trace() {
    let malformed = [
        "x-snet-trace: \r\n",                                                  // empty
        "x-snet-trace: zz23456789abcdef0123456789abcdef-0000000000000001\r\n", // not hex
        "x-snet-trace: 0123456789abcdef-0000000000000001\r\n",                 // short trace
        "x-snet-trace: 00000000000000000000000000000000-0000000000000001\r\n", // zero trace
        "x-snet-trace: 0123456789abcdef0123456789abcdef 0000000000000001\r\n", // no dash
        "x-snet-trace: 0123456789abcdef0123456789abcdef-1\r\n",                // short span
    ];
    for headers in malformed {
        let req = request_with_headers(headers);
        let (ctx, forwarded) = extract_trace(&req);
        assert!(!forwarded, "{headers:?} must not count as forwarded");
        assert_ne!(ctx.trace.0, 0, "fresh trace ids are never zero");
    }
}

/// A 49-byte value whose byte 32 falls inside a multi-byte UTF-8 char:
/// naive byte-offset splitting would panic on the non-char-boundary,
/// killing the connection worker. Must degrade like any other garbage.
#[test]
fn multibyte_trace_header_degrades_to_fresh_trace() {
    let value = format!("{}é{}", "a".repeat(31), "b".repeat(16));
    assert_eq!(value.len(), 49);
    let req = request_with_headers(&format!("x-snet-trace: {value}\r\n"));
    let (ctx, forwarded) = extract_trace(&req);
    assert!(!forwarded);
    assert_ne!(ctx.trace.0, 0);
}

#[test]
fn oversized_trace_header_degrades_to_fresh_trace() {
    let huge = format!("x-snet-trace: {}\r\n", "a".repeat(2048));
    let req = request_with_headers(&huge);
    let (ctx, forwarded) = extract_trace(&req);
    assert!(!forwarded);
    assert_ne!(ctx.trace.0, 0);
}

/// Duplicated trace headers are ambiguous — the server must not guess
/// which one the client meant, so both are discarded.
#[test]
fn duplicate_trace_headers_degrade_to_fresh_trace() {
    let req = request_with_headers(
        "x-snet-trace: 0123456789abcdef0123456789abcdef-0000000000000001\r\n\
         x-snet-trace: fedcba9876543210fedcba9876543210-0000000000000002\r\n",
    );
    let (ctx, forwarded) = extract_trace(&req);
    assert!(!forwarded);
    assert_ne!(ctx.trace.to_hex(), "0123456789abcdef0123456789abcdef");
    assert_ne!(ctx.trace.to_hex(), "fedcba9876543210fedcba9876543210");
}

// --- ND-JSON framing property -------------------------------------------

/// Deterministic pseudo-random stream (64-bit LCG, Knuth constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn gen_frame(rng: &mut Lcg, job: &str, seq: u64) -> ProgressFrame {
    let kind = match rng.below(3) {
        0 => {
            let states = [
                JobState::Queued,
                JobState::Running,
                JobState::Done,
                JobState::Cancelled,
                JobState::Failed,
            ];
            FrameKind::Lifecycle { state: states[rng.below(5) as usize] }
        }
        1 => {
            let names = ["search.rounds", "search.nodes", "search.tt.spilled", "check.inputs"];
            FrameKind::Event { name: names[rng.below(4) as usize].to_string(), value: rng.next() }
        }
        _ => {
            // Messages cover the characters JSON string escaping must
            // survive; newlines are excluded by the frame contract.
            let pieces = ["round 3 refuted", "a\\b", "q\"uote", "tab\there", "caf\u{e9}", ""];
            let mut message = String::new();
            for _ in 0..=rng.below(3) {
                message.push_str(pieces[rng.below(6) as usize]);
            }
            FrameKind::Log { message }
        }
    };
    // Frames from traced requests carry the owning trace id; untraced
    // (library-caller) frames omit the field. Both shapes must survive
    // the wire.
    let trace = match rng.below(2) {
        0 => None,
        _ => Some(format!("{:032x}", rng.next().max(1))),
    };
    ProgressFrame { job: job.to_string(), seq, trace, kind }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// A burst of frames written through the chunked writer — with
    /// adversarial chunk boundaries that split lines arbitrarily —
    /// reassembles into exactly the same frames on the client's
    /// line-splitting side.
    #[test]
    fn ndjson_frames_survive_chunked_transport(seed in 0u64..100_000) {
        let mut rng = Lcg(seed.wrapping_mul(2) + 1);
        let job = format!("job-{}", rng.below(1000));
        let frames: Vec<ProgressFrame> =
            (0..1 + rng.below(12)).map(|seq| gen_frame(&mut rng, &job, seq)).collect();

        // Serialize the stream as the server does: one line per frame,
        // then slice it into chunks at LCG-chosen boundaries (the wire
        // is free to split a line across chunks).
        let mut stream = Vec::new();
        for f in &frames {
            let line = f.to_json_line();
            prop_assert!(!line.contains('\n'), "frames must fit one line");
            stream.extend_from_slice(line.as_bytes());
            stream.push(b'\n');
        }
        let mut wire = Vec::new();
        {
            let mut cw = ChunkedWriter::start(&mut wire, 200, "application/x-ndjson", &[])
                .expect("writing to a Vec cannot fail");
            let mut rest = &stream[..];
            while !rest.is_empty() {
                let take = (1 + rng.below(rest.len() as u64 * 2)).min(rest.len() as u64) as usize;
                cw.chunk(&rest[..take]).expect("chunk write");
                rest = &rest[take..];
            }
            cw.finish().expect("finish write");
        }

        // De-chunk and split lines exactly as `client::stream_lines`
        // does: drain complete lines, keep the partial tail. Work on
        // bytes — a chunk boundary may split a multi-byte UTF-8
        // character, so the framed wire is not decodable as a whole.
        let body_at = wire
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head/body split")
            + 4;
        let mut dechunked: Vec<u8> = Vec::new();
        let mut rest = &wire[body_at..];
        loop {
            let nl = rest.iter().position(|&b| b == b'\n').expect("chunk size line");
            let size_line = std::str::from_utf8(&rest[..nl]).unwrap().trim();
            let size = usize::from_str_radix(size_line, 16).expect("hex chunk size");
            rest = &rest[nl + 1..];
            if size == 0 {
                break;
            }
            dechunked.extend_from_slice(&rest[..size]);
            prop_assert_eq!(&rest[size..size + 2], b"\r\n", "chunk data ends with CRLF");
            rest = &rest[size + 2..];
        }

        let mut parsed = Vec::new();
        let mut tail: Vec<u8> = dechunked;
        while let Some(pos) = tail.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = tail.drain(..=pos).collect();
            let text = std::str::from_utf8(&line[..line.len() - 1]).unwrap();
            parsed.push(ProgressFrame::parse_line(text).expect("line parses as a frame"));
        }
        prop_assert!(tail.is_empty(), "no partial line may remain after the final frame");
        prop_assert_eq!(parsed, frames);
    }
}
