//! End-to-end coverage of the artifact store: byte-identical replay,
//! corruption quarantine, GC by generation, and TT spill merging.

use snet_core::element::Element;
use snet_core::ir::CanonicalHash;
use snet_core::network::ComparatorNetwork;
use snet_core::verdict::{verdict_zero_one_exhaustive, Verdict, VerdictKind};
use snet_store::{load_tt_facts, save_tt_facts, ArtifactStore, TtFacts, KIND_VERDICT};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh, unique store root under the system temp dir.
fn scratch_root(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "snet-store-it-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An odd-even transposition sort on `n` wires — a genuine sorter.
fn sorter(n: usize) -> ComparatorNetwork {
    let mut net = ComparatorNetwork::empty(n);
    for round in 0..n {
        let start = round % 2;
        let elems: Vec<Element> =
            (start..n - 1).step_by(2).map(|i| Element::cmp(i as u32, i as u32 + 1)).collect();
        if !elems.is_empty() {
            net.push_elements(elems).unwrap();
        }
    }
    net
}

/// A network that misses comparisons — guaranteed counterexamples.
fn non_sorter(n: usize) -> ComparatorNetwork {
    let mut net = ComparatorNetwork::empty(n);
    net.push_elements(vec![Element::cmp(0, 1)]).unwrap();
    net
}

#[test]
fn verdict_roundtrip_is_byte_identical() {
    let store = ArtifactStore::open(scratch_root("roundtrip")).unwrap();
    let verdict = verdict_zero_one_exhaustive(&sorter(5));
    assert!(verdict.is_sorting());

    let cold_bytes = verdict.to_json().into_bytes();
    assert!(store.get_verdict(&verdict.hash).is_none(), "cold store misses");
    store.put_verdict(&verdict).unwrap();

    let (replayed, stored_bytes) = store.get_verdict(&verdict.hash).expect("warm store hits");
    assert_eq!(stored_bytes, cold_bytes, "hit hands back the exact cold bytes");
    assert_eq!(replayed, verdict);
}

#[test]
fn cache_hit_replays_identical_lowest_index_counterexample() {
    // The satellite contract: a warm cache hit must replay the *same*
    // lowest-index counterexample a cold run finds, byte for byte.
    let store = ArtifactStore::open(scratch_root("lowest-cx")).unwrap();
    let net = non_sorter(6);

    let cold = verdict_zero_one_exhaustive(&net);
    let cold_index = match &cold.kind {
        VerdictKind::Counterexample { index, .. } => *index,
        other => panic!("expected a counterexample, got {other:?}"),
    };
    store.put_verdict(&cold).unwrap();

    // A later process recomputes the hash from the network alone and hits.
    let hash = CanonicalHash::of_network(&net);
    let (warm, warm_bytes) = store.get_verdict(&hash).expect("warm hit");
    let warm_index = match &warm.kind {
        VerdictKind::Counterexample { index, input, output } => {
            // The replayed witness still refutes the network.
            assert_eq!(&net.evaluate(input), output);
            *index
        }
        other => panic!("expected a counterexample, got {other:?}"),
    };
    assert_eq!(warm_index, cold_index);
    assert_eq!(warm_bytes, cold.to_json().into_bytes());

    // And an independent cold recomputation agrees with the cached bytes
    // (the lowest-index scan is deterministic).
    let recomputed = verdict_zero_one_exhaustive(&net);
    assert_eq!(recomputed.to_json().into_bytes(), warm_bytes);
}

#[test]
fn corrupt_entries_are_quarantined_not_fatal() {
    let root = scratch_root("corrupt");
    let store = ArtifactStore::open(&root).unwrap();
    let verdict = verdict_zero_one_exhaustive(&sorter(4));
    let path = store.put_verdict(&verdict).unwrap();

    // Flip a payload byte on disk: checksum must catch it.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    assert!(store.get(&verdict.hash).is_none(), "corrupt entry reads as a miss");
    assert!(!path.exists(), "corrupt entry is moved aside");
    assert_eq!(store.stat().unwrap().quarantined, 1);

    // The slot is reusable: a fresh put works and hits again.
    store.put_verdict(&verdict).unwrap();
    let (_, stored) = store.get_verdict(&verdict.hash).expect("hits after rewrite");
    assert_eq!(stored, verdict.to_json().into_bytes());

    // Garbage that was never a valid entry is also just a miss.
    std::fs::write(&path, b"{\"schema\":\"nonsense\"}\nxx").unwrap();
    assert!(store.get(&verdict.hash).is_none());
    assert!(store.get(&verdict.hash).is_none(), "still a miss after quarantine");
}

#[test]
fn temp_files_and_strangers_are_not_entries() {
    let root = scratch_root("strays");
    let store = ArtifactStore::open(&root).unwrap();
    let verdict = verdict_zero_one_exhaustive(&sorter(4));
    store.put_verdict(&verdict).unwrap();

    // Simulate a crashed writer and an unrelated file in a shard dir.
    let shard = root.join("objects").join(&verdict.hash.to_hex()[..2]);
    std::fs::write(shard.join(".tmp-999-crashed"), b"partial").unwrap();
    std::fs::write(shard.join("notes.txt"), b"hello").unwrap();

    let listed = store.ls().unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].hash, verdict.hash);
    assert_eq!(listed[0].kind, KIND_VERDICT);
}

#[test]
fn gc_evicts_oldest_generations_first() {
    let root = scratch_root("gc");
    let hashes: Vec<CanonicalHash> =
        (0..4u32).map(|i| CanonicalHash::of_label(&format!("gc-entry-{i}"))).collect();

    // Two entries in generation 1, two in generation 2.
    let gen1 = ArtifactStore::open(&root).unwrap();
    assert_eq!(gen1.generation(), 1);
    gen1.put(&hashes[0], "blob", &[0u8; 256]).unwrap();
    gen1.put(&hashes[1], "blob", &[1u8; 256]).unwrap();
    let gen2 = ArtifactStore::open(&root).unwrap();
    assert_eq!(gen2.generation(), 2, "each open bumps the generation");
    gen2.put(&hashes[2], "blob", &[2u8; 256]).unwrap();
    gen2.put(&hashes[3], "blob", &[3u8; 256]).unwrap();

    let total = gen2.stat().unwrap().bytes;
    let report = gen2.gc(total / 2).unwrap();
    assert_eq!(report.scanned, 4);
    assert_eq!(report.removed, 2, "half the budget evicts half the entries");
    assert!(report.remaining_bytes <= total / 2);

    // The generation-1 entries went first; generation 2 survives.
    assert!(gen2.get(&hashes[0]).is_none());
    assert!(gen2.get(&hashes[1]).is_none());
    assert!(gen2.get(&hashes[2]).is_some());
    assert!(gen2.get(&hashes[3]).is_some());

    // A budget large enough for everything removes nothing.
    assert_eq!(gen2.gc(u64::MAX).unwrap().removed, 0);
}

#[test]
fn corrupt_meta_restarts_generations_without_failing() {
    let root = scratch_root("meta");
    let first = ArtifactStore::open(&root).unwrap();
    assert_eq!(first.generation(), 1);
    std::fs::write(root.join("store.meta.json"), b"]]]not json").unwrap();
    let recovered = ArtifactStore::open(&root).unwrap();
    assert_eq!(recovered.generation(), 1, "corrupt meta restarts the counter");
    assert!(recovered.stat().unwrap().quarantined >= 1, "bad meta is parked");
}

#[test]
fn tt_spills_merge_across_runs() {
    let store = ArtifactStore::open(scratch_root("tt")).unwrap();
    let label = "search/n=7/depth=6";
    assert!(load_tt_facts(&store, label).is_none(), "no spill yet");

    let run1 = TtFacts::from_pairs(vec![(vec![1, 0], 3), (vec![2, 0], 1)]);
    assert_eq!(save_tt_facts(&store, label, &run1, 1024).unwrap(), 2);

    // A second run learns a deeper fact for one key and a new key.
    let run2 = TtFacts::from_pairs(vec![(vec![1, 0], 5), (vec![7, 7], 2)]);
    assert_eq!(save_tt_facts(&store, label, &run2, 1024).unwrap(), 3);

    let merged = load_tt_facts(&store, label).expect("spill loads");
    assert_eq!(
        merged.facts(),
        &[(vec![1, 0], 5), (vec![2, 0], 1), (vec![7, 7], 2)],
        "merge keeps the deepest budget per key"
    );

    // Budget-capped save keeps the deepest facts.
    assert_eq!(save_tt_facts(&store, label, &TtFacts::default(), 2).unwrap(), 2);
    let capped = load_tt_facts(&store, label).unwrap();
    assert_eq!(capped.facts(), &[(vec![1, 0], 5), (vec![7, 7], 2)]);

    // Different labels are fully independent entries.
    assert!(load_tt_facts(&store, "search/n=8/depth=6").is_none());
}

#[test]
fn verdict_parse_rejects_tampered_schema() {
    let verdict = verdict_zero_one_exhaustive(&sorter(4));
    let json = verdict.to_json();
    let tampered = json.replace("snet-verdict/1", "snet-verdict/999");
    assert!(Verdict::parse(&tampered).is_err());
}
