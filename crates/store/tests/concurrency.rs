//! Concurrent open/write/GC safety: the store is shared by every worker
//! of a long-lived daemon, so N threads hammering `put` must race `gc`
//! (and each other) without corrupting entries, losing meta updates, or
//! spuriously quarantining files that a sibling legitimately evicted.

use snet_core::ir::CanonicalHash;
use snet_store::ArtifactStore;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snet-store-conc-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_opens_get_distinct_generations() {
    let root = scratch_root("opens");
    std::fs::create_dir_all(&root).unwrap();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let root = root.clone();
        handles.push(std::thread::spawn(move || ArtifactStore::open(&root).unwrap().generation()));
    }
    let mut gens: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    gens.sort_unstable();
    assert_eq!(gens, (1..=8).collect::<Vec<u64>>(), "no open may lose its meta update");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn open_shared_reuses_the_live_handle_per_root() {
    let root = scratch_root("shared");
    let a = ArtifactStore::open_shared(&root).unwrap();
    let b = ArtifactStore::open_shared(&root).unwrap();
    assert_eq!(a.generation(), b.generation(), "live handles share one generation");

    // Concurrent shared opens agree too.
    let mut handles = Vec::new();
    for _ in 0..6 {
        let root = root.clone();
        handles.push(std::thread::spawn(move || {
            ArtifactStore::open_shared(&root).unwrap().generation()
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), a.generation());
    }

    // Once every handle is gone, the next shared open bumps again.
    let last = a.generation();
    drop(a);
    drop(b);
    let fresh = ArtifactStore::open_shared(&root).unwrap();
    assert_eq!(fresh.generation(), last + 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn writers_race_gc_without_corruption() {
    let root = scratch_root("race");
    let store = ArtifactStore::open(&root).unwrap();

    const WRITERS: usize = 4;
    const PUTS_PER_WRITER: usize = 40;
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let store = store.clone();
            scope.spawn(move || {
                for i in 0..PUTS_PER_WRITER {
                    // Half the hashes are private to the writer, half are
                    // contended by every writer (same payload, so the
                    // last rename winning is indistinguishable).
                    let (label, payload) = if i % 2 == 0 {
                        (format!("race-w{w}-{i}"), vec![w as u8; 512])
                    } else {
                        (format!("race-shared-{i}"), vec![0xAB; 512])
                    };
                    let hash = CanonicalHash::of_label(&label);
                    store.put(&hash, "blob", &payload).unwrap();
                    if let Some(entry) = store.get(&hash) {
                        assert_eq!(entry.payload.len(), 512, "reads never see torn entries");
                    }
                }
            });
        }
        let gc_store = store.clone();
        let gc_done = done.clone();
        scope.spawn(move || {
            while !gc_done.load(Ordering::Relaxed) {
                // A tight budget keeps eviction constantly active under
                // the writers.
                gc_store.gc(16 * 1024).unwrap();
            }
        });
        let ls_store = store.clone();
        let ls_done = done.clone();
        scope.spawn(move || {
            while !ls_done.load(Ordering::Relaxed) {
                for meta in ls_store.ls().unwrap() {
                    assert!(meta.bytes > 0);
                }
            }
        });
        // Writers finish first; then release the GC/ls loops. The scope
        // joins writer threads before this closure returns, so flip the
        // flag from a watcher thread.
        let watch_done = done.clone();
        scope.spawn(move || {
            // Writers do bounded work; poll until the object count stops
            // changing is overkill — just give them time and flip.
            std::thread::sleep(std::time::Duration::from_millis(400));
            watch_done.store(true, Ordering::Relaxed);
        });
    });

    // Post-race: every surviving entry is intact, nothing was quarantined
    // (vanished-under-GC files must not be misread as corruption).
    let stats = store.stat().unwrap();
    assert_eq!(stats.quarantined, 0, "races must never fabricate corruption");
    for meta in store.ls().unwrap() {
        let entry = store.get(&meta.hash).expect("listed entry reads back");
        assert_eq!(entry.payload.len(), 512);
    }
    // GC still converges to its budget once the writers stop.
    let report = store.gc(4 * 1024).unwrap();
    assert!(report.remaining_bytes <= 4 * 1024);
    let _ = std::fs::remove_dir_all(&root);
}
