//! Spill/load format for the search transposition table.
//!
//! A search run over a given `(n, depth-budget)` label can persist its
//! UNSAT facts — "reachable set `S` fails every suffix of ≤ `r` layers" —
//! and a later run with the same label can pre-load them. The facts are
//! absolute refutations (see `snet_search::tt`), so absorbing a spill
//! can only prune branches that would fail anyway: warm starts keep the
//! engine's determinism.
//!
//! Spills are stored in the [`crate::ArtifactStore`] under
//! [`crate::KIND_TT_FACTS`], keyed by `CanonicalHash::of_label` of a
//! caller-chosen label string (e.g. `"search/n=7/depth=6"`). The payload
//! is a deterministic binary encoding: facts sorted by key, so the same
//! fact set always produces the same bytes.

use crate::store::{ArtifactStore, KIND_TT_FACTS};
use snet_core::ir::CanonicalHash;
use std::io;

/// Magic prefix of a TT spill payload.
const MAGIC: &[u8; 8] = b"SNTTSPL1";

/// An in-memory set of transposition-table refutation facts, ready to
/// encode into — or decoded from — a store entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TtFacts {
    /// `(canonical state words, refuted budget)` pairs, sorted by key.
    facts: Vec<(Vec<u64>, u8)>,
}

impl TtFacts {
    /// Builds a fact set from unordered `(key, budget)` pairs. Duplicate
    /// keys keep the deepest budget.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Vec<u64>, u8)>) -> TtFacts {
        let mut facts: Vec<(Vec<u64>, u8)> = pairs.into_iter().collect();
        facts.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        facts.dedup_by(|next, kept| next.0 == kept.0); // keeps first = deepest
        TtFacts { facts }
    }

    /// The facts, sorted by key.
    pub fn facts(&self) -> &[(Vec<u64>, u8)] {
        &self.facts
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Merges `other` into `self`, keeping the deepest budget per key.
    pub fn merge(&mut self, other: &TtFacts) {
        let merged =
            TtFacts::from_pairs(self.facts.iter().cloned().chain(other.facts.iter().cloned()));
        *self = merged;
    }

    /// Keeps at most `max_facts`, preferring the deepest refutations
    /// (ties broken by key, so truncation is deterministic).
    pub fn truncate_to(&mut self, max_facts: usize) {
        if self.facts.len() <= max_facts {
            return;
        }
        let mut by_value = std::mem::take(&mut self.facts);
        by_value.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_value.truncate(max_facts);
        by_value.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        self.facts = by_value;
    }

    /// Deterministic binary encoding (same facts ⇒ same bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.facts.len() * 24);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.facts.len() as u64).to_le_bytes());
        for (key, budget) in &self.facts {
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            for &w in key {
                out.extend_from_slice(&w.to_le_bytes());
            }
            out.push(*budget);
        }
        out
    }

    /// Decodes a spill payload. Any structural violation is an error —
    /// callers treat a bad spill as a cache miss, never a crash.
    pub fn decode(bytes: &[u8]) -> Result<TtFacts, String> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(8)? != MAGIC {
            return Err("bad TT spill magic".to_string());
        }
        let count = u64::from_le_bytes(cur.take(8)?.try_into().unwrap());
        // A key has ≥ 1 word ⇒ each fact is ≥ 13 bytes; reject counts the
        // payload cannot possibly hold before allocating.
        if count > (bytes.len() as u64) / 13 {
            return Err("fact count exceeds payload size".to_string());
        }
        let mut facts = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let words = u32::from_le_bytes(cur.take(4)?.try_into().unwrap()) as usize;
            if words == 0 {
                return Err("empty fact key".to_string());
            }
            let mut key = Vec::with_capacity(words);
            for _ in 0..words {
                key.push(u64::from_le_bytes(cur.take(8)?.try_into().unwrap()));
            }
            let budget = cur.take(1)?[0];
            facts.push((key, budget));
        }
        if cur.pos != bytes.len() {
            return Err("trailing bytes after facts".to_string());
        }
        let decoded = TtFacts::from_pairs(facts);
        if decoded.facts.len() != count as usize {
            return Err("duplicate or unsorted fact keys".to_string());
        }
        Ok(decoded)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err("truncated TT spill".to_string()),
        }
    }
}

/// Loads the TT spill stored under `label`, if any. Corrupt or
/// undecodable spills read as `None`.
pub fn load_tt_facts(store: &ArtifactStore, label: &str) -> Option<TtFacts> {
    let hash = CanonicalHash::of_label(label);
    let entry = store.get(&hash)?;
    if entry.kind != KIND_TT_FACTS {
        return None;
    }
    TtFacts::decode(&entry.payload).ok()
}

/// Merges `facts` with whatever is already stored under `label`, caps
/// the union at `max_facts` (deepest refutations win), and writes it
/// back. Returns the number of facts persisted.
pub fn save_tt_facts(
    store: &ArtifactStore,
    label: &str,
    facts: &TtFacts,
    max_facts: usize,
) -> io::Result<usize> {
    let mut merged = load_tt_facts(store, label).unwrap_or_default();
    merged.merge(facts);
    merged.truncate_to(max_facts);
    store.put(&CanonicalHash::of_label(label), KIND_TT_FACTS, &merged.encode())?;
    Ok(merged.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TtFacts {
        TtFacts::from_pairs(vec![
            (vec![3, 1], 2),
            (vec![1, 2], 5),
            (vec![1, 2], 3), // shallower duplicate: dropped
            (vec![9, 9, 9], 1),
        ])
    }

    #[test]
    fn encode_decode_roundtrip_is_stable() {
        let facts = sample();
        assert_eq!(facts.len(), 3);
        assert_eq!(facts.facts()[0], (vec![1, 2], 5), "deepest duplicate wins");
        let bytes = facts.encode();
        let back = TtFacts::decode(&bytes).expect("decodes");
        assert_eq!(back, facts);
        assert_eq!(back.encode(), bytes, "encoding is canonical");
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(TtFacts::decode(b"not a spill").is_err());
        let mut truncated = sample().encode();
        truncated.pop();
        assert!(TtFacts::decode(&truncated).is_err());
        let mut trailing = sample().encode();
        trailing.push(0);
        assert!(TtFacts::decode(&trailing).is_err());
        // Absurd count with a tiny payload must not allocate or panic.
        let mut bomb = Vec::new();
        bomb.extend_from_slice(MAGIC);
        bomb.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(TtFacts::decode(&bomb).is_err());
    }

    #[test]
    fn merge_keeps_deepest_and_truncation_is_deterministic() {
        let mut a = TtFacts::from_pairs(vec![(vec![1], 2), (vec![2], 7)]);
        let b = TtFacts::from_pairs(vec![(vec![1], 6), (vec![3], 1)]);
        a.merge(&b);
        assert_eq!(
            a.facts(),
            &[(vec![1], 6), (vec![2], 7), (vec![3], 1)],
            "deepest budget survives a merge"
        );
        a.truncate_to(2);
        assert_eq!(
            a.facts(),
            &[(vec![1], 6), (vec![2], 7)],
            "truncation keeps the deepest refutations"
        );
    }
}
