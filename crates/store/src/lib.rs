//! `snet-store` — the workspace's content-addressed artifact cache.
//!
//! Every verdict-producing path (checking, search, the adversary
//! commands) keys its result by [`snet_core::ir::CanonicalHash`] — a
//! stable digest of the circuit's *canonical form*, computed after the
//! canonical passes (`absorb-routes`, `normalize-cmprev`,
//! `strip-pass-swap`). Two presentations of the same circuit (different
//! pass orderings, `Cmp`/`CmpRev` spellings, element listing order,
//! inert `Pass`/`Swap` padding) share one address, so a verdict computed
//! once is replayed byte-identically forever after.
//!
//! The crate provides:
//!
//! * [`ArtifactStore`] — the sharded on-disk store: crash-safe writes
//!   (temp file + rename), checksum-verified memory-mapped reads,
//!   quarantine (never abort) on corruption, generation-based GC;
//! * [`tt`] — a spill/load format for the search engine's UNSAT
//!   transposition table, so warm searches start with the previous run's
//!   refutation facts;
//! * [`mmap`] — the read-only mapping primitive the store reads through.
//!
//! Lookups and writes tick the `store.hits` / `store.misses` /
//! `store.bytes` obs counters, so cache behaviour lands in run reports
//! next to the engine's own metrics.

#![warn(missing_docs)]

pub mod mmap;
pub mod store;
pub mod tt;

pub use store::{
    ArtifactStore, EntryMeta, GcReport, StoreStats, StoredEntry, ENTRY_SCHEMA, KIND_TT_FACTS,
    KIND_VERDICT, META_SCHEMA,
};
pub use tt::{load_tt_facts, save_tt_facts, TtFacts};
