//! The [`ArtifactStore`]: a sharded, content-addressed on-disk cache.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   store.meta.json            # {"schema":"snet-store-meta/1","generation":G}
//!   objects/<hh>/<hash64>.art  # hh = first two hex chars of the hash
//!   quarantine/                # corrupt entries, moved aside, never fatal
//! ```
//!
//! Each `.art` entry is a one-line JSON header followed by the raw
//! payload bytes:
//!
//! ```text
//! {"schema":"snet-store-entry/1","hash":"…","kind":"verdict","generation":3,"len":412,"checksum":"a1b2…"}
//! <payload: exactly `len` bytes>
//! ```
//!
//! The payload is stored verbatim, so a cache hit can hand back the
//! exact bytes the cold run produced — byte-identical verdicts are a
//! store guarantee, not an accident.
//!
//! ## Durability and corruption
//!
//! Writes are crash-safe: the entry is written to a hidden temp file in
//! the same shard directory, fsynced, then atomically renamed into
//! place. Readers that find a malformed header, a length mismatch, or a
//! failing FNV-1a checksum move the entry to `quarantine/` and report a
//! miss — corruption costs a recompute, never an abort.
//!
//! ## Eviction
//!
//! Every [`ArtifactStore::open`] bumps the store generation; entries are
//! stamped with the generation that wrote them. [`ArtifactStore::gc`]
//! evicts oldest-generation entries first (ties broken by hash) until
//! the store fits the byte budget — a cheap LRU at run granularity.
//!
//! ## Concurrency
//!
//! The store never assumed a single owner for *reads* (atomic renames
//! mean readers see old or new, never torn), and writes are safe from
//! any number of threads and handles: temp-file names carry a
//! process-wide sequence number, so two threads writing the same hash
//! cannot collide, and the last rename wins with both byte-identical.
//! The generation bump in [`ArtifactStore::open`] takes an advisory
//! lock file (`store.meta.lock`), so concurrent opens — across threads
//! *or* processes — each get a distinct generation instead of losing
//! updates. [`ArtifactStore::gc`] tolerates entries vanishing under it
//! (another handle's GC got there first). A long-lived multi-threaded
//! process should prefer [`ArtifactStore::open_shared`], which hands
//! every caller one shared generation per root.

use crate::mmap::map_file;
use snet_core::ir::CanonicalHash;
use snet_core::verdict::Verdict;
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Schema tag of the per-entry header line.
pub const ENTRY_SCHEMA: &str = "snet-store-entry/1";
/// Schema tag of `store.meta.json`.
pub const META_SCHEMA: &str = "snet-store-meta/1";
/// Entry kind for [`Verdict`] artifacts.
pub const KIND_VERDICT: &str = "verdict";
/// Entry kind for transposition-table spills ([`crate::tt`]).
pub const KIND_TT_FACTS: &str = "tt-facts";

/// FNV-1a 64 over the payload — an integrity check against torn or
/// bit-rotted entries (the content hash already guards identity).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A store entry read back: header fields plus the verbatim payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredEntry {
    /// The content address the entry is filed under.
    pub hash: CanonicalHash,
    /// Entry kind ([`KIND_VERDICT`], [`KIND_TT_FACTS`], …).
    pub kind: String,
    /// Store generation that wrote the entry.
    pub generation: u64,
    /// The payload bytes, exactly as written.
    pub payload: Vec<u8>,
}

/// Header-only metadata of one entry (no payload), as listed by
/// [`ArtifactStore::ls`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryMeta {
    /// The content address.
    pub hash: CanonicalHash,
    /// Entry kind.
    pub kind: String,
    /// Store generation that wrote the entry.
    pub generation: u64,
    /// Total size on disk (header + payload).
    pub bytes: u64,
    /// Absolute path of the entry file.
    pub path: PathBuf,
}

/// Aggregate store statistics ([`ArtifactStore::stat`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Live entries under `objects/`.
    pub entries: u64,
    /// Bytes of live entries (headers + payloads).
    pub bytes: u64,
    /// Current store generation.
    pub generation: u64,
    /// Verdict entries among `entries`.
    pub verdicts: u64,
    /// TT-spill entries among `entries`.
    pub tt_spills: u64,
    /// Files parked in `quarantine/`.
    pub quarantined: u64,
}

/// What [`ArtifactStore::gc`] did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Entries examined.
    pub scanned: u64,
    /// Entries evicted (oldest generation first).
    pub removed: u64,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Bytes remaining after the sweep.
    pub remaining_bytes: u64,
}

/// A handle to one on-disk store. Cheap to clone (shared root and
/// generation); all methods take `&self` and are safe to use from many
/// threads — writes are atomic renames, readers see old or new, never
/// torn.
#[derive(Clone)]
pub struct ArtifactStore {
    inner: Arc<Inner>,
}

struct Inner {
    root: PathBuf,
    generation: u64,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("root", &self.inner.root)
            .field("generation", &self.inner.generation)
            .finish()
    }
}

impl ArtifactStore {
    /// Opens (creating if needed) the store at `root` and bumps its
    /// generation. A corrupt meta file is quarantined and the counter
    /// restarts — opening never fails on bad content, only on I/O.
    ///
    /// The generation read-modify-write runs under the `store.meta.lock`
    /// advisory lock, so concurrent opens of one root (threads or
    /// processes) serialize and each get a distinct generation.
    pub fn open(root: impl AsRef<Path>) -> io::Result<ArtifactStore> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("objects"))?;
        std::fs::create_dir_all(root.join("quarantine"))?;
        let meta_path = root.join("store.meta.json");
        let _lock = MetaLock::acquire(&root)?;
        let generation = match read_meta_generation(&meta_path) {
            Ok(g) => g + 1,
            Err(MetaError::Missing) => 1,
            Err(MetaError::Corrupt) => {
                quarantine_file(&root, &meta_path);
                1
            }
        };
        let meta = format!("{{\"schema\":\"{META_SCHEMA}\",\"generation\":{generation}}}\n");
        write_atomically(&meta_path, meta.as_bytes())?;
        Ok(ArtifactStore { inner: Arc::new(Inner { root, generation }) })
    }

    /// Opens `root` sharing one generation per root within this process:
    /// when a handle for the same root is still alive anywhere in the
    /// process, the returned handle shares it (same `Arc<Inner>`, same
    /// generation) instead of bumping again. The first open of a root —
    /// or the first after every prior handle was dropped — behaves like
    /// [`ArtifactStore::open`].
    ///
    /// This is the constructor for long-lived multi-threaded services:
    /// `snetd` keeps one store open for its lifetime, and every worker
    /// that resolves the store gets the daemon's handle rather than
    /// inflating the generation counter (which would age cache entries
    /// artificially fast under [`ArtifactStore::gc`]).
    pub fn open_shared(root: impl AsRef<Path>) -> io::Result<ArtifactStore> {
        let root_buf = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root_buf.join("objects"))?;
        let key = std::fs::canonicalize(&root_buf).unwrap_or_else(|_| root_buf.clone());
        // Hold the registry lock across the fallback open: two threads
        // racing the first open of a root must not both bump.
        let mut reg = shared_registry().lock().unwrap_or_else(|p| p.into_inner());
        if let Some(inner) = reg.get(&key).and_then(Weak::upgrade) {
            return Ok(ArtifactStore { inner });
        }
        let store = ArtifactStore::open(&root_buf)?;
        reg.insert(key, Arc::downgrade(&store.inner));
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.inner.root
    }

    /// The generation stamped on entries written through this handle.
    pub fn generation(&self) -> u64 {
        self.inner.generation
    }

    fn entry_path(&self, hash: &CanonicalHash) -> PathBuf {
        let hex = hash.to_hex();
        self.inner.root.join("objects").join(&hex[..2]).join(format!("{hex}.art"))
    }

    /// Whether an entry file exists under `hash` (no integrity check —
    /// a `true` here with a failing [`ArtifactStore::get`] means the
    /// entry is corrupt).
    pub fn contains(&self, hash: &CanonicalHash) -> bool {
        self.entry_path(hash).exists()
    }

    /// Looks up `hash`, returning the stored entry on a hit. Counts
    /// `store.hits`/`store.misses`; corrupt entries are quarantined
    /// (counted under `store.quarantined`) and read as a miss.
    pub fn get(&self, hash: &CanonicalHash) -> Option<StoredEntry> {
        let _span = snet_obs::span("store.lookup");
        let path = self.entry_path(hash);
        let mapped = match map_file(&path) {
            Ok(m) => m,
            Err(_) => {
                snet_obs::counter("store.misses", 1);
                return None;
            }
        };
        match parse_entry(&mapped, Some(hash)) {
            Ok((meta, payload)) => {
                snet_obs::counter("store.hits", 1);
                snet_obs::counter("store.bytes", payload.len() as u64);
                Some(StoredEntry {
                    hash: *hash,
                    kind: meta.kind,
                    generation: meta.generation,
                    payload: payload.to_vec(),
                })
            }
            Err(reason) => {
                drop(mapped); // unmap before renaming the file away
                snet_obs::counter("store.misses", 1);
                snet_obs::counter("store.quarantined", 1);
                quarantine_file(&self.inner.root, &path);
                snet_obs::gauge("store.last_quarantine", 1.0);
                let _ = reason; // reported via counters; reads stay quiet
                None
            }
        }
    }

    /// Looks up a [`Verdict`] by canonical hash. Returns the parsed
    /// verdict together with the stored payload bytes (byte-identical to
    /// what the producing run wrote). Entries of a different kind or an
    /// unparseable verdict schema read as a miss.
    pub fn get_verdict(&self, hash: &CanonicalHash) -> Option<(Verdict, Vec<u8>)> {
        let entry = self.get(hash)?;
        if entry.kind != KIND_VERDICT {
            return None;
        }
        let text = std::str::from_utf8(&entry.payload).ok()?;
        let verdict = Verdict::parse(text).ok()?;
        Some((verdict, entry.payload))
    }

    /// Stores `payload` under `hash` with the given kind. Overwrites any
    /// existing entry (same hash ⇒ same content in practice; the rewrite
    /// refreshes the generation stamp). Crash-safe: temp file + rename.
    pub fn put(&self, hash: &CanonicalHash, kind: &str, payload: &[u8]) -> io::Result<PathBuf> {
        let _span = snet_obs::span("store.put");
        let path = self.entry_path(hash);
        let header = format!(
            "{{\"schema\":\"{ENTRY_SCHEMA}\",\"hash\":\"{}\",\"kind\":\"{kind}\",\
             \"generation\":{},\"len\":{},\"checksum\":\"{:016x}\"}}\n",
            hash.to_hex(),
            self.inner.generation,
            payload.len(),
            fnv1a(payload),
        );
        let mut bytes = Vec::with_capacity(header.len() + payload.len());
        bytes.extend_from_slice(header.as_bytes());
        bytes.extend_from_slice(payload);
        write_atomically(&path, &bytes)?;
        snet_obs::counter("store.writes", 1);
        snet_obs::counter("store.bytes", payload.len() as u64);
        Ok(path)
    }

    /// Stores a [`Verdict`] under its own canonical hash.
    pub fn put_verdict(&self, verdict: &Verdict) -> io::Result<PathBuf> {
        self.put(&verdict.hash, KIND_VERDICT, verdict.to_json().as_bytes())
    }

    /// Lists every live entry's header metadata, sorted by hash.
    /// Unreadable or corrupt entries are quarantined along the way.
    pub fn ls(&self) -> io::Result<Vec<EntryMeta>> {
        let mut out = Vec::new();
        let objects = self.inner.root.join("objects");
        for shard in read_dir_sorted(&objects)? {
            if !shard.is_dir() {
                continue;
            }
            for path in read_dir_sorted(&shard)? {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !name.ends_with(".art") {
                    continue; // temp files and strangers are not entries
                }
                match read_entry_meta(&path) {
                    Some(meta) => out.push(meta),
                    // Vanished between the directory walk and the read:
                    // a racing GC removed it — not corruption.
                    None if !path.exists() => {}
                    None => {
                        snet_obs::counter("store.quarantined", 1);
                        quarantine_file(&self.inner.root, &path);
                    }
                }
            }
        }
        out.sort_by_key(|e| e.hash);
        Ok(out)
    }

    /// Aggregate statistics (walks the store).
    pub fn stat(&self) -> io::Result<StoreStats> {
        let entries = self.ls()?;
        let mut stats = StoreStats {
            entries: entries.len() as u64,
            generation: self.inner.generation,
            ..StoreStats::default()
        };
        for e in &entries {
            stats.bytes += e.bytes;
            match e.kind.as_str() {
                KIND_VERDICT => stats.verdicts += 1,
                KIND_TT_FACTS => stats.tt_spills += 1,
                _ => {}
            }
        }
        stats.quarantined = read_dir_sorted(&self.inner.root.join("quarantine"))?.len() as u64;
        // Mirror the on-disk footprint into the metrics registry so a
        // long-lived process that stats periodically exports
        // snet_store_disk_bytes / snet_store_disk_entries gauges.
        snet_obs::gauge("store.disk_bytes", stats.bytes as f64);
        snet_obs::gauge("store.disk_entries", stats.entries as f64);
        Ok(stats)
    }

    /// Evicts oldest-generation entries (ties by hash) until the live
    /// entries fit in `max_bytes`.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let mut entries = self.ls()?;
        entries.sort_by_key(|e| (e.generation, e.hash));
        let mut report = GcReport { scanned: entries.len() as u64, ..GcReport::default() };
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        for e in &entries {
            if total <= max_bytes {
                break;
            }
            match std::fs::remove_file(&e.path) {
                Ok(()) => {
                    report.removed += 1;
                    report.freed_bytes += e.bytes;
                }
                // Another handle's GC (or a quarantine) won the race;
                // the bytes are gone either way.
                Err(err) if err.kind() == io::ErrorKind::NotFound => {}
                Err(err) => return Err(err),
            }
            total = total.saturating_sub(e.bytes);
        }
        report.remaining_bytes = total;
        snet_obs::counter("store.gc.removed", report.removed);
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// Entry encoding/decoding.
// ---------------------------------------------------------------------------

struct EntryHeader {
    hash: CanonicalHash,
    kind: String,
    generation: u64,
    len: u64,
    checksum: u64,
}

/// Splits and validates an entry's bytes. `expect_hash`, when given,
/// must match the header's hash (a renamed/misfiled entry is corrupt).
fn parse_entry<'a>(
    bytes: &'a [u8],
    expect_hash: Option<&CanonicalHash>,
) -> Result<(EntryHeader, &'a [u8]), String> {
    let nl = bytes.iter().position(|&b| b == b'\n').ok_or_else(|| "no header line".to_string())?;
    let header_text =
        std::str::from_utf8(&bytes[..nl]).map_err(|_| "header is not UTF-8".to_string())?;
    let header = parse_header(header_text)?;
    if let Some(h) = expect_hash {
        if header.hash != *h {
            return Err("entry filed under the wrong hash".to_string());
        }
    }
    let payload = &bytes[nl + 1..];
    if payload.len() as u64 != header.len {
        return Err(format!("payload length {} != header len {}", payload.len(), header.len));
    }
    if fnv1a(payload) != header.checksum {
        return Err("checksum mismatch".to_string());
    }
    Ok((header, payload))
}

fn parse_header(text: &str) -> Result<EntryHeader, String> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("header is not JSON: {e}"))?;
    let get = |k: &str| {
        v.as_object()
            .and_then(|o| o.iter().find(|(key, _)| key == k).map(|(_, val)| val))
            .ok_or_else(|| format!("header missing `{k}`"))
    };
    let schema = get("schema")?.as_str().ok_or("schema not a string")?;
    if schema != ENTRY_SCHEMA {
        return Err(format!("unrecognized entry schema {schema:?}"));
    }
    let hash_hex = get("hash")?.as_str().ok_or("hash not a string")?;
    let hash = CanonicalHash::from_hex(hash_hex).ok_or("malformed hash")?;
    let checksum_hex = get("checksum")?.as_str().ok_or("checksum not a string")?;
    let checksum =
        u64::from_str_radix(checksum_hex, 16).map_err(|_| "malformed checksum".to_string())?;
    Ok(EntryHeader {
        hash,
        kind: get("kind")?.as_str().ok_or("kind not a string")?.to_string(),
        generation: get("generation")?.as_u64().ok_or("generation not an integer")?,
        len: get("len")?.as_u64().ok_or("len not an integer")?,
        checksum,
    })
}

/// Reads just the header of an entry file (maps the file, parses the
/// first line, validates payload length — cheap integrity screen used by
/// `ls`; the checksum is verified on `get`).
fn read_entry_meta(path: &Path) -> Option<EntryMeta> {
    let bytes = map_file(path).ok()?;
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let header = parse_header(std::str::from_utf8(&bytes[..nl]).ok()?).ok()?;
    if (bytes.len() - nl - 1) as u64 != header.len {
        return None;
    }
    // The filename must agree with the header.
    let stem = path.file_stem()?.to_str()?;
    if CanonicalHash::from_hex(stem)? != header.hash {
        return None;
    }
    Some(EntryMeta {
        hash: header.hash,
        kind: header.kind,
        generation: header.generation,
        bytes: bytes.len() as u64,
        path: path.to_path_buf(),
    })
}

// ---------------------------------------------------------------------------
// Filesystem plumbing.
// ---------------------------------------------------------------------------

/// Live [`Inner`]s by canonical root, for [`ArtifactStore::open_shared`].
fn shared_registry() -> &'static Mutex<HashMap<PathBuf, Weak<Inner>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<PathBuf, Weak<Inner>>>> = OnceLock::new();
    REGISTRY.get_or_init(Default::default)
}

/// RAII advisory lock on `<root>/store.meta.lock`, guarding the meta
/// file's read-modify-write. Created with `create_new` (atomic on every
/// platform we build for); a lock older than [`MetaLock::STALE`] is
/// presumed leaked by a crashed holder and stolen — the critical
/// section is two tiny file ops, never legitimately that long.
struct MetaLock {
    path: PathBuf,
}

impl MetaLock {
    const STALE: Duration = Duration::from_secs(10);
    const WAIT: Duration = Duration::from_secs(5);

    fn acquire(root: &Path) -> io::Result<MetaLock> {
        let path = root.join("store.meta.lock");
        let deadline = Instant::now() + MetaLock::WAIT;
        loop {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(MetaLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age > MetaLock::STALE);
                    if stale {
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("{}: advisory lock held too long", path.display()),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for MetaLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Writes `bytes` to `path` crash-safely: temp file in the same
/// directory, fsync, atomic rename. The temp name carries a process-wide
/// sequence number so concurrent writers of the *same* target path never
/// share a temp file — and ends in `.tmp`, never `.art`, so a concurrent
/// `ls` walk cannot mistake a half-written temp for a corrupt entry and
/// quarantine it out from under the rename.
fn write_atomically(path: &Path, bytes: &[u8]) -> io::Result<()> {
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().expect("entry paths have a parent");
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".{}.{}-{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("entry"),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

enum MetaError {
    Missing,
    Corrupt,
}

fn read_meta_generation(path: &Path) -> Result<u64, MetaError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(MetaError::Missing),
        Err(_) => return Err(MetaError::Corrupt),
    };
    let v: serde_json::Value = serde_json::from_str(text.trim()).map_err(|_| MetaError::Corrupt)?;
    let obj = v.as_object().ok_or(MetaError::Corrupt)?;
    let schema = obj
        .iter()
        .find(|(k, _)| k == "schema")
        .and_then(|(_, v)| v.as_str())
        .ok_or(MetaError::Corrupt)?;
    if schema != META_SCHEMA {
        return Err(MetaError::Corrupt);
    }
    obj.iter()
        .find(|(k, _)| k == "generation")
        .and_then(|(_, v)| v.as_u64())
        .ok_or(MetaError::Corrupt)
}

/// Moves `path` into `<root>/quarantine/`, keeping the filename and
/// suffixing on collision. Best-effort: failures are swallowed (the
/// next reader will retry; losing the rename only re-reports the same
/// corruption later).
fn quarantine_file(root: &Path, path: &Path) {
    let qdir = root.join("quarantine");
    let _ = std::fs::create_dir_all(&qdir);
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
    let mut target = qdir.join(name);
    let mut i = 1u32;
    while target.exists() {
        target = qdir.join(format!("{name}.{i}"));
        i += 1;
    }
    let _ = std::fs::rename(path, &target);
}

/// Directory entries, sorted by name for deterministic iteration; a
/// missing directory reads as empty.
fn read_dir_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    out.sort();
    Ok(out)
}
