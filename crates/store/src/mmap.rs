//! Read-only memory mapping with a portable fallback.
//!
//! Store entries are read through [`map_file`]: on Unix the file is
//! `mmap(2)`-ed (no copy, page-cache backed — a warm hit touches only
//! the pages it reads), elsewhere — and for empty files, which cannot be
//! mapped — the bytes are read into an owned buffer. Both shapes deref
//! to `&[u8]`, so callers never branch on the mechanism.
//!
//! The binding is hand-rolled against the libc the standard library
//! already links; the workspace vendors no `libc`/`memmap` crate.

use std::fs::File;
use std::io;
use std::path::Path;

/// A file's contents, memory-mapped when possible.
pub enum MappedFile {
    /// A live `mmap(2)` mapping (Unix, non-empty files).
    #[cfg(unix)]
    Mapped(Mmap),
    /// Owned bytes (fallback platforms and empty files).
    Owned(Vec<u8>),
}

impl std::ops::Deref for MappedFile {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            MappedFile::Mapped(m) => m.as_slice(),
            MappedFile::Owned(v) => v,
        }
    }
}

/// Maps `path` read-only. Empty files yield an empty owned buffer (an
/// empty mapping is invalid); on non-Unix targets this reads the file.
pub fn map_file(path: &Path) -> io::Result<MappedFile> {
    let file = File::open(path)?;
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(MappedFile::Owned(Vec::new()));
    }
    #[cfg(unix)]
    {
        Mmap::map(&file, len as usize).map(MappedFile::Mapped)
    }
    #[cfg(not(unix))]
    {
        drop(file);
        std::fs::read(path).map(MappedFile::Owned)
    }
}

#[cfg(unix)]
pub use unix::Mmap;

#[cfg(unix)]
mod unix {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // Minimal mmap(2) binding against the platform libc std links.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// An owned read-only mapping, unmapped on drop.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is read-only and exclusively owned; the
    // underlying pages are valid for the lifetime of the struct.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only. `len` must be non-zero.
        pub(super) fn map(file: &File, len: usize) -> io::Result<Mmap> {
            debug_assert!(len > 0, "cannot map an empty file");
            // SAFETY: all arguments are valid — NULL hint, a length
            // matching the open file's size, a live fd, offset 0. A
            // MAP_FAILED return is checked below.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `drop` unmaps it.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe the mapping created in `map`,
            // unmapped exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_reads_back() {
        let dir = std::env::temp_dir().join("snet-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mmap-roundtrip.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &data).unwrap();
        let mapped = map_file(&path).expect("maps");
        assert_eq!(&mapped[..], &data[..]);

        let empty = dir.join("mmap-empty.bin");
        std::fs::write(&empty, b"").unwrap();
        assert_eq!(map_file(&empty).expect("empty maps").len(), 0);

        assert!(map_file(&dir.join("missing.bin")).is_err());
    }
}
