//! Symbolic evaluation of a network on an input pattern (Definition 3.5),
//! with *token tracking* for the path argument of Lemmas 3.2 and 3.3.
//!
//! Pushing a pattern through a comparator is straightforward: the larger
//! symbol (under `<_P`) exits on the max-output. Ambiguity arises only when
//! two **equal** symbols meet at a comparator — then the pattern does not
//! determine which underlying value goes where.
//!
//! The lower-bound argument needs more than the output pattern: it needs to
//! know, for every wire in a noncolliding `[M_i]`-set, *where its value is*
//! at each level. The [`Tracer`] therefore carries an origin token on each
//! tracked wire. As long as no two equal *tracked* symbols ever meet at a
//! comparator — which is exactly the noncolliding invariant the adversary
//! maintains — every tracked token's position is determined, under **all**
//! inputs refining the pattern (Lemma 3.2's proof). If the invariant is
//! violated the tracer reports an [`StepOutcome::AmbiguousMeet`] rather
//! than guessing; the adversary treats that as a hard bug.

use crate::pattern::Pattern;
use crate::symbol::Symbol;
use snet_core::element::{Element, ElementKind, WireId};
use snet_core::network::ComparatorNetwork;
use snet_core::perm::Permutation;

/// Result of applying one element symbolically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The element's effect on the pattern is fully determined.
    Determined,
    /// Two tracked tokens carrying equal symbols met at a comparator: the
    /// pattern cannot decide the outcome (the wires "can collide",
    /// Definition 3.7b). The tracer leaves both in place; callers enforcing
    /// the noncolliding invariant should treat this as an error.
    AmbiguousMeet {
        /// The comparator's wires.
        a: WireId,
        /// Second wire.
        b: WireId,
        /// Origin of the token on `a`.
        origin_a: WireId,
        /// Origin of the token on `b`.
        origin_b: WireId,
    },
}

impl StepOutcome {
    /// True if the step was fully determined.
    pub fn is_determined(&self) -> bool {
        matches!(self, StepOutcome::Determined)
    }
}

/// A deterministic comparator meeting between two tracked tokens — the
/// collision events the adversary counts at `Γ` levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedMeet {
    /// Origin wire of the token that exits on the min side.
    pub origin_min: WireId,
    /// Origin wire of the token that exits on the max side.
    pub origin_max: WireId,
}

/// Symbolic evaluator with origin tracking.
#[derive(Debug, Clone)]
pub struct Tracer {
    /// Symbol currently on each wire.
    syms: Vec<Symbol>,
    /// Origin input wire of the tracked token on each wire, if any.
    origin: Vec<Option<WireId>>,
    /// Inverse map: current wire of each origin's token, if tracked.
    pos: Vec<Option<WireId>>,
}

impl Tracer {
    /// Starts a trace from `pattern`, tracking every wire whose symbol
    /// satisfies `track`.
    pub fn new<F: Fn(Symbol) -> bool>(pattern: &Pattern, track: F) -> Self {
        let n = pattern.len();
        let mut origin = vec![None; n];
        let mut pos = vec![None; n];
        for w in 0..n as WireId {
            if track(pattern.get(w)) {
                origin[w as usize] = Some(w);
                pos[w as usize] = Some(w);
            }
        }
        Tracer { syms: pattern.symbols().to_vec(), origin, pos }
    }

    /// Number of wires.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True iff the tracer covers no wires.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Symbol currently on wire `w`.
    pub fn symbol_at(&self, w: WireId) -> Symbol {
        self.syms[w as usize]
    }

    /// Origin of the tracked token on wire `w`, if any.
    pub fn origin_at(&self, w: WireId) -> Option<WireId> {
        self.origin[w as usize]
    }

    /// Current wire of origin `o`'s token, if still tracked.
    pub fn position_of(&self, o: WireId) -> Option<WireId> {
        self.pos[o as usize]
    }

    /// The current frontier as a pattern (the network-so-far's output
    /// pattern in the sense of Definition 3.5).
    pub fn frontier(&self) -> Pattern {
        Pattern::from_symbols(self.syms.clone())
    }

    /// Overwrites the symbol on wire `w` (used by the adversary's
    /// refinement steps; the caller is responsible for only performing
    /// order-preserving renamings / valid refinements).
    pub fn set_symbol_at(&mut self, w: WireId, sym: Symbol) {
        self.syms[w as usize] = sym;
    }

    /// Stops tracking the token that originated at `o` (used when a wire is
    /// evicted from its `[M_i]`-set and parked as an `X` symbol).
    pub fn untrack_origin(&mut self, o: WireId) {
        if let Some(w) = self.pos[o as usize].take() {
            self.origin[w as usize] = None;
        }
    }

    /// Applies an order-preserving symbol renaming to the frontier symbols
    /// of the given wires.
    pub fn rename_at<F: Fn(Symbol) -> Symbol>(&mut self, wires: &[WireId], f: F) {
        for &w in wires {
            self.syms[w as usize] = f(self.syms[w as usize]);
        }
    }

    /// Applies a single element. `on_meet` fires for every *determined*
    /// comparator meeting of two tracked tokens (the collision events of
    /// Definition 3.6, restricted to tracked wires).
    pub fn apply_element<F: FnMut(TrackedMeet)>(
        &mut self,
        e: &Element,
        mut on_meet: F,
    ) -> StepOutcome {
        let (ia, ib) = (e.a as usize, e.b as usize);
        match e.kind {
            ElementKind::Pass => StepOutcome::Determined,
            ElementKind::Swap => {
                self.swap_wires(ia, ib);
                StepOutcome::Determined
            }
            ElementKind::Cmp | ElementKind::CmpRev => {
                let (sa, sb) = (self.syms[ia], self.syms[ib]);
                if sa == sb {
                    return match (self.origin[ia], self.origin[ib]) {
                        (Some(oa), Some(ob)) => StepOutcome::AmbiguousMeet {
                            a: e.a,
                            b: e.b,
                            origin_a: oa,
                            origin_b: ob,
                        },
                        // An equal-symbol meeting involving at most one
                        // tracked token: tracked-set completeness (an
                        // [M_i]-set contains *all* occurrences of M_i) rules
                        // this out for tracked symbols, so the tokens here
                        // are untracked and the tie is harmless: leave in
                        // place.
                        (Some(o), None) | (None, Some(o)) => {
                            StepOutcome::AmbiguousMeet { a: e.a, b: e.b, origin_a: o, origin_b: o }
                        }
                        (None, None) => StepOutcome::Determined,
                    };
                }
                // Strict order: min symbol goes to the min output.
                let a_is_min = sa < sb;
                let min_to_a = e.kind == ElementKind::Cmp;
                if a_is_min != min_to_a {
                    self.swap_wires(ia, ib);
                }
                if let (Some(oa), Some(ob)) = (self.origin[ia], self.origin[ib]) {
                    // Both tracked: report the (determined) meeting. After a
                    // possible swap, wire holding the min is known.
                    let (omin, omax) = if min_to_a { (oa, ob) } else { (ob, oa) };
                    on_meet(TrackedMeet { origin_min: omin, origin_max: omax });
                }
                StepOutcome::Determined
            }
        }
    }

    fn swap_wires(&mut self, ia: usize, ib: usize) {
        self.syms.swap(ia, ib);
        self.origin.swap(ia, ib);
        if let Some(o) = self.origin[ia] {
            self.pos[o as usize] = Some(ia as WireId);
        }
        if let Some(o) = self.origin[ib] {
            self.pos[o as usize] = Some(ib as WireId);
        }
    }

    /// Routes the frontier through a fixed permutation (symbol on wire `w`
    /// moves to wire `perm(w)`), like a routing level.
    pub fn route(&mut self, perm: &Permutation) {
        assert_eq!(perm.len(), self.syms.len());
        let old_syms = self.syms.clone();
        let old_origin = self.origin.clone();
        perm.route(&old_syms, &mut self.syms);
        perm.route(&old_origin, &mut self.origin);
        for (w, o) in self.origin.iter().enumerate() {
            if let Some(o) = o {
                self.pos[*o as usize] = Some(w as WireId);
            }
        }
    }

    /// Applies a whole network, panicking on any ambiguous meeting (the
    /// caller asserts the tracked sets are noncolliding). `on_meet` receives
    /// every determined tracked meeting together with its level index.
    pub fn apply_network_strict<F: FnMut(usize, TrackedMeet)>(
        &mut self,
        net: &ComparatorNetwork,
        mut on_meet: F,
    ) {
        for (li, level) in net.levels().iter().enumerate() {
            if let Some(p) = &level.route {
                self.route(p);
            }
            for e in &level.elements {
                let out = self.apply_element(e, |m| on_meet(li, m));
                assert!(
                    out.is_determined(),
                    "noncolliding invariant violated at level {li}: {out:?}"
                );
            }
        }
    }
}

/// Pure Definition 3.5 evaluation: the output pattern of `net` on `p`
/// (no tracking; equal-symbol comparator meetings are fine because both
/// outputs carry the same symbol either way).
pub fn output_pattern(net: &ComparatorNetwork, p: &Pattern) -> Pattern {
    let mut syms = p.symbols().to_vec();
    let mut scratch: Vec<Symbol> = Vec::with_capacity(syms.len());
    for level in net.levels() {
        if let Some(perm) = &level.route {
            scratch.clear();
            scratch.extend_from_slice(&syms);
            perm.route(&scratch, &mut syms);
        }
        for e in &level.elements {
            let (ia, ib) = (e.a as usize, e.b as usize);
            match e.kind {
                ElementKind::Pass => {}
                ElementKind::Swap => syms.swap(ia, ib),
                ElementKind::Cmp => {
                    if syms[ia] > syms[ib] {
                        syms.swap(ia, ib);
                    }
                }
                ElementKind::CmpRev => {
                    if syms[ia] < syms[ib] {
                        syms.swap(ia, ib);
                    }
                }
            }
        }
    }
    Pattern::from_symbols(syms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::network::Level;
    use Symbol::{L, M, S};

    fn net_of(levels: Vec<Vec<Element>>, n: usize) -> ComparatorNetwork {
        ComparatorNetwork::new(n, levels.into_iter().map(Level::of_elements).collect()).unwrap()
    }

    #[test]
    fn output_pattern_matches_definition_3_5() {
        // A comparator sends the larger symbol to the max output.
        let net = net_of(vec![vec![Element::cmp(0, 1)]], 2);
        let p = Pattern::from_symbols(vec![L(0), S(0)]);
        let out = output_pattern(&net, &p);
        assert_eq!(out.symbols(), &[S(0), L(0)]);
    }

    #[test]
    fn output_pattern_refines_consistently_with_inputs() {
        // For every input refining p, the network's output must refine the
        // output pattern: Λ(p[V]) = Λ(p)[V] (Definition 3.5).
        let net = net_of(
            vec![vec![Element::cmp(0, 2), Element::cmp_rev(1, 3)], vec![Element::cmp(0, 1)]],
            4,
        );
        let p = Pattern::from_symbols(vec![M(0), S(0), M(0), L(0)]);
        let out_pattern = output_pattern(&net, &p);
        let exec = snet_core::ir::Executor::compile(&net);
        // Enumerate all refinements of p over permutations of {0..3}.
        let mut found = 0;
        let mut perm = vec![0u32, 1, 2, 3];
        let mut c = [0usize; 4];
        loop {
            if p.refines_to_input(&perm) {
                found += 1;
                let out = exec.evaluate(&perm);
                assert!(
                    out_pattern.refines_to_input(&out),
                    "output {:?} violates output pattern on input {:?}",
                    out,
                    perm
                );
            }
            let mut i = 0;
            loop {
                if i >= 4 {
                    assert!(found > 0);
                    return;
                }
                if c[i] < i {
                    if i % 2 == 0 {
                        perm.swap(0, i);
                    } else {
                        perm.swap(c[i], i);
                    }
                    c[i] += 1;
                    break;
                }
                c[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn tracer_tracks_through_comparators_and_swaps() {
        let net = net_of(
            vec![
                vec![Element::cmp(0, 1)],     // M(0) on 0, L on 1: no move
                vec![Element::swap(1, 2)],    // L moves to 2
                vec![Element::cmp_rev(0, 2)], // max to 0: L to 0, M to 2
            ],
            3,
        );
        let p = Pattern::from_symbols(vec![M(0), L(0), S(0)]);
        let mut tr = Tracer::new(&p, |s| s.is_m());
        tr.apply_network_strict(&net, |_, _| panic!("only one tracked token"));
        assert_eq!(tr.position_of(0), Some(2));
        assert_eq!(tr.origin_at(2), Some(0));
        assert_eq!(tr.symbol_at(2), M(0));
        assert_eq!(tr.frontier().symbols(), &[L(0), S(0), M(0)]);
    }

    #[test]
    fn tracer_reports_determined_meetings() {
        // Two tracked tokens with distinct symbols meet: determined, and the
        // meet callback identifies min/max origins.
        let net = net_of(vec![vec![Element::cmp(0, 1)]], 2);
        let p = Pattern::from_symbols(vec![M(1), M(0)]);
        let mut tr = Tracer::new(&p, |s| s.is_m());
        let mut meets = Vec::new();
        tr.apply_network_strict(&net, |li, m| meets.push((li, m)));
        assert_eq!(meets, vec![(0, TrackedMeet { origin_min: 1, origin_max: 0 })]);
        // M(0) < M(1): min output (wire 0) now holds origin 1.
        assert_eq!(tr.origin_at(0), Some(1));
        assert_eq!(tr.position_of(0), Some(1));
    }

    #[test]
    fn ambiguous_meet_detected() {
        let net = net_of(vec![vec![Element::cmp(0, 1)]], 2);
        let p = Pattern::from_symbols(vec![M(0), M(0)]);
        let mut tr = Tracer::new(&p, |s| s.is_m());
        let out = tr.apply_element(&Element::cmp(0, 1), |_| {});
        assert!(matches!(out, StepOutcome::AmbiguousMeet { origin_a: 0, origin_b: 1, .. }));
        // And the strict variant panics.
        let mut tr2 = Tracer::new(&p, |s| s.is_m());
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tr2.apply_network_strict(&net, |_, _| {});
        }));
        assert!(res.is_err());
    }

    #[test]
    fn equal_untracked_symbols_are_harmless() {
        let net = net_of(vec![vec![Element::cmp(0, 1)]], 2);
        let p = Pattern::from_symbols(vec![S(0), S(0)]);
        let mut tr = Tracer::new(&p, |s| s.is_m());
        tr.apply_network_strict(&net, |_, _| {});
        assert_eq!(tr.frontier().symbols(), &[S(0), S(0)]);
    }

    #[test]
    fn untrack_stops_reporting() {
        let net = net_of(vec![vec![Element::cmp(0, 1)]], 2);
        let p = Pattern::from_symbols(vec![M(0), M(1)]);
        let mut tr = Tracer::new(&p, |s| s.is_m());
        tr.untrack_origin(0);
        assert_eq!(tr.position_of(0), None);
        let mut meets = 0;
        tr.apply_network_strict(&net, |_, _| meets += 1);
        assert_eq!(meets, 0, "meetings need both tokens tracked");
        // The untracked wire still carries its symbol.
        assert_eq!(tr.symbol_at(0), M(0));
    }

    #[test]
    fn route_moves_tokens() {
        let p = Pattern::from_symbols(vec![M(0), S(0), L(0)]);
        let mut tr = Tracer::new(&p, |s| s.is_m());
        let perm = Permutation::from_images_unchecked(vec![2, 0, 1]);
        tr.route(&perm);
        assert_eq!(tr.position_of(0), Some(2));
        assert_eq!(tr.frontier().symbols(), &[S(0), L(0), M(0)]);
    }

    #[test]
    fn rename_at_subset() {
        let p = Pattern::from_symbols(vec![M(0), M(0), M(0)]);
        let mut tr = Tracer::new(&p, |s| s.is_m());
        tr.rename_at(&[0, 2], |s| match s {
            M(i) => M(i + 5),
            other => other,
        });
        assert_eq!(tr.frontier().symbols(), &[M(5), M(0), M(5)]);
    }

    #[test]
    fn tracked_positions_agree_with_concrete_paths() {
        // Soundness of the path argument: wherever the tracer puts a tracked
        // token, the concrete value from that wire lands there under every
        // refinement of the pattern.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        for trial in 0..200 {
            let n = 6usize;
            // Random pattern: distinct M symbols on a few wires, S/L on rest.
            let mut syms = Vec::with_capacity(n);
            let mut next_m = 0;
            for _ in 0..n {
                syms.push(match rng.gen_range(0..3) {
                    0 => {
                        next_m += 1;
                        M(next_m - 1)
                    }
                    1 => S(0),
                    _ => L(0),
                });
            }
            let p = Pattern::from_symbols(syms);
            // Random shallow network.
            let mut levels = Vec::new();
            for _ in 0..4 {
                let mut wires: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    let j = rng.gen_range(0..=i);
                    wires.swap(i, j);
                }
                let mut elems = Vec::new();
                for k in 0..rng.gen_range(0..=n / 2) {
                    let kind = match rng.gen_range(0..3) {
                        0 => ElementKind::Cmp,
                        1 => ElementKind::CmpRev,
                        _ => ElementKind::Swap,
                    };
                    elems.push(Element { a: wires[2 * k], b: wires[2 * k + 1], kind });
                }
                levels.push(elems);
            }
            let net = net_of(levels, n);
            let mut tr = Tracer::new(&p, |s| s.is_m());
            // Skip trials where the invariant doesn't hold (M symbols are
            // distinct here, so strict never panics; but S/L ties are fine).
            tr.apply_network_strict(&net, |_, _| {});
            let exec = snet_core::ir::Executor::compile(&net);
            // For a sample of refinements, check value positions.
            for _ in 0..20 {
                let tie: Vec<u32> = (0..n as u32).map(|_| rng.gen()).collect();
                let input = p.to_input_with(|w| tie[w as usize]);
                assert!(p.refines_to_input(&input), "trial {trial}");
                let out = exec.evaluate(&input);
                for w in 0..n as u32 {
                    if p.get(w).is_m() {
                        let pos = tr.position_of(w).expect("still tracked") as usize;
                        assert_eq!(
                            out[pos], input[w as usize],
                            "trial {trial}: token from wire {w} should land at {pos}"
                        );
                    }
                }
            }
        }
    }
}
