//! # snet-pattern — the input-pattern calculus of Section 3
//!
//! * [`symbol`] — the pattern alphabet `P = {S_i, X_{i,j}, M_i, L_i}` with
//!   the paper's total order `<_P`;
//! * [`pattern`] — input patterns, refinement `⊐_W` / `⊐_U`, restriction,
//!   combination `⊕`, refinement to concrete inputs, and the `ρ_i`
//!   collapse of Lemma 3.4;
//! * [`symbolic`] — Definition 3.5 evaluation plus the origin-tracking
//!   [`symbolic::Tracer`] realizing the path argument of Lemmas 3.2/3.3;
//! * [`collision`] — exact (exponential) Definition 3.7 classification for
//!   cross-validating the tracer on small instances, reproducing
//!   Example 3.3;
//! * [`lemmas`] — the four basic lemmas of §3.3 as executable, checkable
//!   statements with randomized and exhaustive validation.

//!
//! ## Example
//!
//! ```
//! use snet_pattern::{Pattern, Symbol};
//!
//! // "wires 0,1 carry the two largest values" (Example 3.1).
//! let p = Pattern::from_symbols(vec![
//!     Symbol::L(0), Symbol::L(0), Symbol::M(0), Symbol::M(0),
//! ]);
//! assert!(p.refines_to_input(&[2, 3, 0, 1]));
//! assert!(!p.refines_to_input(&[0, 3, 1, 2]));
//!
//! // Refinement: additionally pin wire 2 below wire 3.
//! let q = Pattern::from_symbols(vec![
//!     Symbol::L(0), Symbol::L(0), Symbol::M(0), Symbol::M(1),
//! ]);
//! assert!(p.refines_to(&q));
//! assert!(!q.refines_to(&p));
//! ```

#![warn(missing_docs)]

pub mod collision;
pub mod lemmas;
pub mod maymeet;
pub mod pattern;
pub mod symbol;
pub mod symbolic;

pub use maymeet::{is_noncolliding_sound, MayMeet};
pub use pattern::Pattern;
pub use symbol::Symbol;
pub use symbolic::{output_pattern, StepOutcome, Tracer, TrackedMeet};
