//! Exact collision classification under a pattern (Definition 3.7), by
//! brute-force enumeration of all refining inputs. Exponential in `n` —
//! this is the *reference* semantics used to cross-validate the symbolic
//! tracer and to reproduce Example 3.3; the adversary itself only relies on
//! the sound symbolic procedure.

use crate::pattern::Pattern;
use snet_core::element::WireId;
use snet_core::network::ComparatorNetwork;
use snet_core::trace::ComparisonTrace;

/// Classification of a wire pair under a pattern (Definition 3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollisionClass {
    /// The wires collide under **every** refining input.
    Collide,
    /// They collide under some refining inputs but not others.
    CanCollide,
    /// No refining input makes them collide.
    CannotCollide,
}

/// Enumerates all permutations of `0..n` (Heap's algorithm). Exposed for
/// tests; panics for `n > 9`.
pub fn all_permutations(n: usize) -> Vec<Vec<u32>> {
    assert!(n <= 9, "all_permutations is factorial; n must be <= 9");
    let mut out = Vec::new();
    let mut p: Vec<u32> = (0..n as u32).collect();
    let mut c = vec![0usize; n];
    out.push(p.clone());
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                p.swap(0, i);
            } else {
                p.swap(c[i], i);
            }
            out.push(p.clone());
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    out
}

/// All inputs the pattern can be refined to (`p[V]`), by filtering the full
/// permutation set. Exponential; small `n` only.
pub fn refining_inputs(p: &Pattern) -> Vec<Vec<u32>> {
    all_permutations(p.len()).into_iter().filter(|input| p.refines_to_input(input)).collect()
}

/// Exact Definition 3.7 classification of `(w0, w1)` in `net` under `p`.
///
/// Panics if `p` admits no refining input (cannot happen for well-formed
/// patterns) or `n > 9`.
pub fn classify_exact(
    net: &ComparatorNetwork,
    p: &Pattern,
    w0: WireId,
    w1: WireId,
) -> CollisionClass {
    let inputs = refining_inputs(p);
    assert!(!inputs.is_empty(), "every pattern admits at least one input");
    let mut collide = 0usize;
    for input in &inputs {
        let trace = ComparisonTrace::record(net, input);
        if trace.compared(input[w0 as usize], input[w1 as usize]) {
            collide += 1;
        }
    }
    if collide == inputs.len() {
        CollisionClass::Collide
    } else if collide == 0 {
        CollisionClass::CannotCollide
    } else {
        CollisionClass::CanCollide
    }
}

/// Exact noncollision check of a wire set (Definition 3.7d): every pair in
/// `set` must be [`CollisionClass::CannotCollide`].
pub fn is_noncolliding_exact(net: &ComparatorNetwork, p: &Pattern, set: &[WireId]) -> bool {
    let inputs = refining_inputs(p);
    for input in &inputs {
        let trace = ComparisonTrace::record(net, input);
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if trace.compared(input[a as usize], input[b as usize]) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol::{L, M, S};
    use snet_core::element::Element;
    use snet_core::network::Level;

    /// The network of Example 3.3: comparators (w1,w2), then (w2,w3), then
    /// (w0,w3), all directed towards the larger-index wire.
    fn example_3_3_network() -> ComparatorNetwork {
        ComparatorNetwork::new(
            4,
            vec![
                Level::of_elements(vec![Element::cmp(1, 2)]),
                Level::of_elements(vec![Element::cmp(2, 3)]),
                Level::of_elements(vec![Element::cmp(0, 3)]),
            ],
        )
        .unwrap()
    }

    /// The pattern of Example 3.3: w0 ↦ S, w1, w2 ↦ M, w3 ↦ L.
    fn example_3_3_pattern() -> Pattern {
        Pattern::from_symbols(vec![S(0), M(0), M(0), L(0)])
    }

    #[test]
    fn example_3_3_part_1_w1_w2_collide() {
        let (net, p) = (example_3_3_network(), example_3_3_pattern());
        assert_eq!(classify_exact(&net, &p, 1, 2), CollisionClass::Collide);
    }

    #[test]
    fn example_3_3_part_2_can_collide() {
        let (net, p) = (example_3_3_network(), example_3_3_pattern());
        assert_eq!(classify_exact(&net, &p, 1, 3), CollisionClass::CanCollide);
        assert_eq!(classify_exact(&net, &p, 2, 3), CollisionClass::CanCollide);
    }

    #[test]
    fn example_3_3_part_3_collide_and_cannot() {
        let (net, p) = (example_3_3_network(), example_3_3_pattern());
        // w0 and w3 collide: no exchange can occur in the second comparator.
        assert_eq!(classify_exact(&net, &p, 0, 3), CollisionClass::Collide);
        // w0 cannot collide with w1 or w2.
        assert_eq!(classify_exact(&net, &p, 0, 1), CollisionClass::CannotCollide);
        assert_eq!(classify_exact(&net, &p, 0, 2), CollisionClass::CannotCollide);
    }

    #[test]
    fn collision_facts_survive_refinement() {
        // "If two wires collide (cannot collide) under p, then they also
        // collide (cannot collide) under any refinement p' of p."
        let (net, p) = (example_3_3_network(), example_3_3_pattern());
        // Refine: split the M class by making w1 smaller than w2.
        let p_fine = Pattern::from_symbols(vec![S(0), M(0), M(1), L(0)]);
        assert!(p.refines_to(&p_fine));
        assert_eq!(classify_exact(&net, &p_fine, 1, 2), CollisionClass::Collide);
        assert_eq!(classify_exact(&net, &p_fine, 0, 1), CollisionClass::CannotCollide);
        // "Can collide" is NOT preserved: w1 vs w3 becomes decided once the
        // M class is split (w1 < w2 means w1 loses the first comparator and
        // never reaches w3).
        assert_eq!(classify_exact(&net, &p_fine, 1, 3), CollisionClass::CannotCollide);
    }

    #[test]
    fn noncolliding_set_check() {
        let (net, p) = (example_3_3_network(), example_3_3_pattern());
        assert!(is_noncolliding_exact(&net, &p, &[0, 1]));
        assert!(is_noncolliding_exact(&net, &p, &[0, 2]));
        assert!(!is_noncolliding_exact(&net, &p, &[1, 2]));
        assert!(!is_noncolliding_exact(&net, &p, &[1, 2, 3]));
        assert!(is_noncolliding_exact(&net, &p, &[]));
        assert!(is_noncolliding_exact(&net, &p, &[3]));
    }

    #[test]
    fn refining_inputs_of_uniform_pattern_is_everything() {
        let p = Pattern::uniform(4, M(0));
        assert_eq!(refining_inputs(&p).len(), 24);
    }

    #[test]
    fn refining_inputs_of_fully_ordered_pattern_is_singleton() {
        let p = Pattern::from_symbols(vec![M(2), M(0), M(1)]);
        let inputs = refining_inputs(&p);
        assert_eq!(inputs, vec![vec![2, 0, 1]]);
    }
}
