//! The four basic lemmas of Section 3.3 as *executable, checkable
//! statements*.
//!
//! The paper only sketches their proofs ("readers familiar with comparator
//! networks should be able to quickly convince themselves"); here each
//! lemma is a function that, given the premises, either derives the
//! conclusion or reports a counterexample — and the test suite hammers
//! them with randomized instances plus exhaustive small cases. The
//! adversary's correctness rests on exactly these facts.

use crate::collision::{classify_exact, refining_inputs, CollisionClass};
use crate::pattern::Pattern;
use crate::symbol::Symbol;
use snet_core::element::WireId;
use snet_core::network::ComparatorNetwork;
use snet_core::trace::ComparisonTrace;

/// **Lemma 3.1** (combining side-refinements). Let `p` use only
/// `S_0, M_0, L_0`, let `W₀ ∪ W₁ = W` partition the wires, `A` be the
/// `[M_0]`-set of `p`, and let `q₀, q₁` refine the restrictions
/// `p|_{W₀}, p|_{W₁}` on `A ∩ Wᵢ` only, assigning `A`-wires symbols
/// strictly between `S_0` and `L_0`. Then `q₀ ⊕ q₁` is an `A`-refinement
/// of `p`.
///
/// Returns the combined pattern after checking every premise, or an error
/// string naming the first violated premise / conclusion.
pub fn lemma_3_1(
    p: &Pattern,
    w0: &[WireId],
    w1: &[WireId],
    q0: &Pattern,
    q1: &Pattern,
) -> Result<Pattern, String> {
    let n = p.len();
    // W₀, W₁ partition W.
    let mut seen = vec![false; n];
    for &w in w0.iter().chain(w1) {
        if seen[w as usize] {
            return Err(format!("wire {w} appears in both W0 and W1"));
        }
        seen[w as usize] = true;
    }
    if !seen.iter().all(|&b| b) {
        return Err("W0 ∪ W1 does not cover W".into());
    }
    // p uses only S_0, M_0, L_0.
    for w in 0..n as WireId {
        if !matches!(p.get(w), Symbol::S(0) | Symbol::M(0) | Symbol::L(0)) {
            return Err(format!("p uses forbidden symbol {} on wire {w}", p.get(w)));
        }
    }
    let a: Vec<WireId> = p.symbol_set(Symbol::M(0));
    // Restrictions refine on A ∩ Wᵢ only, with symbols strictly inside
    // (S_0, L_0) on A-wires.
    for (side, (wires, q)) in [(0, (w0, q0)), (1, (w1, q1))] {
        if q.len() != wires.len() {
            return Err(format!("q{side} has wrong width"));
        }
        let p_restr = p.restrict(wires);
        let a_local: Vec<WireId> = wires
            .iter()
            .enumerate()
            .filter(|(_, &w)| p.get(w) == Symbol::M(0))
            .map(|(i, _)| i as WireId)
            .collect();
        if !p_restr.refines_to_within(q, &a_local) {
            return Err(format!("p|W{side} does not (A∩W{side})-refine to q{side}"));
        }
        for &la in &a_local {
            let s = q.get(la);
            if !(Symbol::S(0) < s && s < Symbol::L(0)) {
                return Err(format!("q{side} assigns {s} to an A-wire"));
            }
        }
    }
    // Conclusion: q0 ⊕ q1 (on the original indexing) A-refines p.
    let mut combined = p.clone();
    for (i, &w) in w0.iter().enumerate() {
        combined.set(w, q0.get(i as WireId));
    }
    for (i, &w) in w1.iter().enumerate() {
        combined.set(w, q1.get(i as WireId));
    }
    if !p.refines_to_within(&combined, &a) {
        return Err("conclusion failed: q0 ⊕ q1 is not an A-refinement of p".into());
    }
    Ok(combined)
}

/// **Lemma 3.2** (no residual ambiguity at the frontier). If the
/// `[P₀]`-set `A₀` and `[P₁]`-set `A₁` are each noncolliding in the first
/// `d−1` levels of `Δ` under `p`, then any `w₀ ∈ A₀`, `w₁ ∈ A₁` either
/// collide at level `d` or cannot collide there — never "can collide".
///
/// Checks the conclusion *exhaustively* over all inputs refining `p`
/// (small `n` only). Returns the number of (collide, cannot) pairs, or an
/// error naming a violating pair.
pub fn lemma_3_2_check(
    delta: &ComparatorNetwork,
    p: &Pattern,
    sym0: Symbol,
    sym1: Symbol,
) -> Result<(usize, usize), String> {
    let d = delta.depth();
    if d == 0 {
        return Ok((0, 0));
    }
    let prefix = ComparatorNetwork::new(delta.wires(), delta.levels()[..d - 1].to_vec())
        .expect("prefix of a valid network");
    let a0 = p.symbol_set(sym0);
    let a1 = p.symbol_set(sym1);
    // Premise: A₀ and A₁ noncolliding in the prefix.
    for (name, set) in [("A0", &a0), ("A1", &a1)] {
        if !crate::collision::is_noncolliding_exact(&prefix, p, set) {
            return Err(format!("premise violated: {name} collides in the first d-1 levels"));
        }
    }
    // Conclusion: at level d, classify by comparisons happening *at that
    // level only*.
    let inputs = refining_inputs(p);
    let mut collide = 0usize;
    let mut cannot = 0usize;
    for &w0 in &a0 {
        for &w1 in &a1 {
            if w0 == w1 {
                continue;
            }
            let mut met = 0usize;
            for input in &inputs {
                let trace = ComparisonTrace::record(delta, input);
                let lvl = trace.first_level(input[w0 as usize], input[w1 as usize]);
                if lvl == Some((d - 1) as u32) {
                    met += 1;
                }
            }
            if met == inputs.len() {
                collide += 1;
            } else if met == 0 {
                cannot += 1;
            } else {
                return Err(format!(
                    "pair ({w0},{w1}) CAN collide at level {d} ({met}/{} inputs) — \
                     Lemma 3.2 violated",
                    inputs.len()
                ));
            }
        }
    }
    Ok((collide, cannot))
}

/// **Lemma 3.4** (the `ρ_i` collapse preserves noncollision). If the
/// `[M_i]`-set `A` is noncolliding in `Λ` under `p`, then `A` is
/// noncolliding under `ρ_i(p)` as well.
///
/// Verified exhaustively; returns `Err` on a violation (none exists, per
/// the paper — the tests confirm).
pub fn lemma_3_4_check(net: &ComparatorNetwork, p: &Pattern, i: u32) -> Result<(), String> {
    let a = p.symbol_set(Symbol::M(i));
    if !crate::collision::is_noncolliding_exact(net, p, &a) {
        return Err("premise violated: A collides under p".into());
    }
    let collapsed = p.collapse_around_m(i);
    debug_assert_eq!(collapsed.symbol_set(Symbol::M(0)), a, "collapse maps M_i to M_0");
    if !crate::collision::is_noncolliding_exact(net, &collapsed, &a) {
        return Err("conclusion failed: A collides under ρ_i(p)".into());
    }
    Ok(())
}

/// Checks the remark after Definition 3.7: `Collide` and `CannotCollide`
/// facts are stable under refinement, while `CanCollide` need not be.
/// Returns `Err` if a stable fact flipped.
pub fn refinement_stability_check(
    net: &ComparatorNetwork,
    p: &Pattern,
    q: &Pattern,
    w0: WireId,
    w1: WireId,
) -> Result<(CollisionClass, CollisionClass), String> {
    if !p.refines_to(q) {
        return Err("q is not a refinement of p".into());
    }
    let before = classify_exact(net, p, w0, w1);
    let after = classify_exact(net, q, w0, w1);
    match (before, after) {
        (CollisionClass::Collide, CollisionClass::Collide)
        | (CollisionClass::CannotCollide, CollisionClass::CannotCollide)
        | (CollisionClass::CanCollide, _) => Ok((before, after)),
        _ => Err(format!("stable fact flipped: {before:?} → {after:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use snet_core::element::{Element, ElementKind};
    use snet_core::network::Level;
    use Symbol::{L, M, S};

    fn random_net(n: usize, depth: usize, seed: u64) -> ComparatorNetwork {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = ComparatorNetwork::empty(n);
        for _ in 0..depth {
            let mut wires: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                wires.swap(i, j);
            }
            let pairs = rng.gen_range(0..=n / 2);
            let elems: Vec<Element> = (0..pairs)
                .map(|k| Element {
                    a: wires[2 * k],
                    b: wires[2 * k + 1],
                    kind: if rng.gen_bool(0.8) { ElementKind::Cmp } else { ElementKind::CmpRev },
                })
                .collect();
            net.push_level(Level::of_elements(elems)).unwrap();
        }
        net
    }

    #[test]
    fn lemma_3_1_combines() {
        // p = [M M M M], W0 = {0,1}, W1 = {2,3}; refine each side's M's.
        let p = Pattern::uniform(4, M(0));
        let q0 = Pattern::from_symbols(vec![M(0), M(1)]);
        let q1 = Pattern::from_symbols(vec![M(1), M(0)]);
        let combined = lemma_3_1(&p, &[0, 1], &[2, 3], &q0, &q1).expect("premises hold");
        assert_eq!(combined.symbols(), &[M(0), M(1), M(1), M(0)]);
    }

    #[test]
    fn lemma_3_1_rejects_bad_premises() {
        let p = Pattern::uniform(4, M(0));
        let q0 = Pattern::from_symbols(vec![M(0), L(0)]); // L(0) not strictly inside
        let q1 = Pattern::from_symbols(vec![M(0), M(0)]);
        assert!(lemma_3_1(&p, &[0, 1], &[2, 3], &q0, &q1).is_err());
        // Overlapping partition.
        let q0 = Pattern::from_symbols(vec![M(0), M(0)]);
        assert!(lemma_3_1(&p, &[0, 1], &[1, 3], &q0, &q1).is_err());
        // Forbidden symbol in p.
        let p_bad = Pattern::from_symbols(vec![M(1), M(0), M(0), M(0)]);
        assert!(lemma_3_1(&p_bad, &[0, 1], &[2, 3], &q0, &q1).is_err());
    }

    #[test]
    fn lemma_3_1_random_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let n = 6;
            let p = Pattern::from_symbols(
                (0..n)
                    .map(|_| match rng.gen_range(0..3) {
                        0 => S(0),
                        1 => M(0),
                        _ => L(0),
                    })
                    .collect(),
            );
            // Random balanced partition.
            let mut wires: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                wires.swap(i, j);
            }
            let (w0, w1) = wires.split_at(n / 2);
            // Refine each side: distinct M indices, strictly inside.
            let mut next = 0u32;
            let refine = |wires: &[u32], next: &mut u32| {
                Pattern::from_symbols(
                    wires
                        .iter()
                        .map(|&w| {
                            if p.get(w) == M(0) {
                                *next += 1;
                                M(*next - 1)
                            } else {
                                p.get(w)
                            }
                        })
                        .collect(),
                )
            };
            let q0 = refine(w0, &mut next);
            let q1 = refine(w1, &mut next);
            let combined = lemma_3_1(&p, w0, w1, &q0, &q1).expect("constructed premises");
            assert!(p.refines_to(&combined));
        }
    }

    #[test]
    fn lemma_3_2_on_example_networks() {
        // A two-level network where two singleton sets' fates at level 2
        // are fully determined.
        let net = ComparatorNetwork::new(
            4,
            vec![
                Level::of_elements(vec![Element::cmp(0, 1), Element::cmp(2, 3)]),
                Level::of_elements(vec![Element::cmp(1, 3)]),
            ],
        )
        .unwrap();
        // M(0) on wire 0, M(1) on wire 2; S/L fringe making paths strict.
        let p = Pattern::from_symbols(vec![M(0), L(0), M(1), L(1)]);
        let (collide, cannot) = lemma_3_2_check(&net, &p, M(0), M(1)).unwrap();
        assert_eq!(collide + cannot, 1, "one cross pair");
    }

    #[test]
    fn lemma_3_2_random_singletons() {
        // Singleton sets are trivially noncolliding; the lemma must hold on
        // arbitrary networks.
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for seed in 0..30u64 {
            let n = 5;
            let net = random_net(n, 3, seed);
            let mut syms = vec![S(0); n];
            let w0 = rng.gen_range(0..n);
            let mut w1 = rng.gen_range(0..n);
            while w1 == w0 {
                w1 = rng.gen_range(0..n);
            }
            syms[w0] = M(0);
            syms[w1] = M(1);
            let p = Pattern::from_symbols(syms);
            // Premise may fail for non-singletons; singletons always pass.
            lemma_3_2_check(&net, &p, M(0), M(1)).unwrap_or_else(|e| {
                panic!("seed {seed}: {e}");
            });
        }
    }

    #[test]
    fn lemma_3_4_collapse_preserves_noncollision() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut checked = 0;
        for seed in 0..60u64 {
            let n = 5;
            let net = random_net(n, 3, seed + 1000);
            // Random pattern with an M(2) set of size 2 and varied fringe.
            let mut syms: Vec<Symbol> = (0..n)
                .map(|_| match rng.gen_range(0..4) {
                    0 => S(0),
                    1 => S(1),
                    2 => L(0),
                    _ => L(1),
                })
                .collect();
            let w0 = rng.gen_range(0..n);
            let mut w1 = rng.gen_range(0..n);
            while w1 == w0 {
                w1 = rng.gen_range(0..n);
            }
            syms[w0] = M(2);
            syms[w1] = M(2);
            let p = Pattern::from_symbols(syms);
            match lemma_3_4_check(&net, &p, 2) {
                Ok(()) => checked += 1,
                Err(e) if e.starts_with("premise") => {} // set collides under p: skip
                Err(e) => panic!("seed {seed}: {e}"),
            }
        }
        assert!(checked > 5, "need some instances where the premise held: {checked}");
    }

    #[test]
    fn stability_of_collision_facts() {
        // Example 3.3's network and pattern: Collide/CannotCollide facts
        // survive the refinement that splits the M class; CanCollide flips.
        let net = ComparatorNetwork::new(
            4,
            vec![
                Level::of_elements(vec![Element::cmp(1, 2)]),
                Level::of_elements(vec![Element::cmp(2, 3)]),
                Level::of_elements(vec![Element::cmp(0, 3)]),
            ],
        )
        .unwrap();
        let p = Pattern::from_symbols(vec![S(0), M(0), M(0), L(0)]);
        let q = Pattern::from_symbols(vec![S(0), M(0), M(1), L(0)]);
        // Stable facts hold.
        refinement_stability_check(&net, &p, &q, 1, 2).unwrap();
        refinement_stability_check(&net, &p, &q, 0, 3).unwrap();
        refinement_stability_check(&net, &p, &q, 0, 1).unwrap();
        // CanCollide is allowed to change — and does here.
        let (before, after) = refinement_stability_check(&net, &p, &q, 1, 3).unwrap();
        assert_eq!(before, CollisionClass::CanCollide);
        assert_eq!(after, CollisionClass::CannotCollide);
    }
}
