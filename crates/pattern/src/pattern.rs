//! Input patterns and refinement (Definitions 3.1–3.3 and Lemma 3.4).
//!
//! An input pattern is a total mapping from the wires `W` to the pattern
//! alphabet `P`. A pattern `p` *can be refined* to `q` (written `p ⊐ q`)
//! if every strict order `p(w) < p(w')` is preserved by `q`; refinement to a
//! concrete input (a permutation of `{0,…,n-1}`) is the special case where
//! `q`'s codomain is the values themselves.
//!
//! We store patterns densely: `syms[w]` is the symbol on wire `w`.

use crate::symbol::Symbol;
use snet_core::element::WireId;
use snet_core::perm::Permutation;

/// An input pattern on wires `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    syms: Vec<Symbol>,
}

impl Pattern {
    /// A pattern assigning `sym` to every wire.
    pub fn uniform(n: usize, sym: Symbol) -> Self {
        Pattern { syms: vec![sym; n] }
    }

    /// Builds from an explicit symbol vector.
    pub fn from_symbols(syms: Vec<Symbol>) -> Self {
        Pattern { syms }
    }

    /// Number of wires.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True iff the pattern has no wires.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Symbol on wire `w`.
    pub fn get(&self, w: WireId) -> Symbol {
        self.syms[w as usize]
    }

    /// Sets the symbol on wire `w`.
    pub fn set(&mut self, w: WireId, sym: Symbol) {
        self.syms[w as usize] = sym;
    }

    /// The underlying symbol slice.
    pub fn symbols(&self) -> &[Symbol] {
        &self.syms
    }

    /// Mutable access to the symbol slice.
    pub fn symbols_mut(&mut self) -> &mut [Symbol] {
        &mut self.syms
    }

    /// The `[P]`-set of this pattern: all wires carrying `sym`.
    pub fn symbol_set(&self, sym: Symbol) -> Vec<WireId> {
        self.syms.iter().enumerate().filter(|(_, &s)| s == sym).map(|(w, _)| w as WireId).collect()
    }

    /// Counts wires carrying `sym`.
    pub fn symbol_count(&self, sym: Symbol) -> usize {
        self.syms.iter().filter(|&&s| s == sym).count()
    }

    /// Checks `self ⊐_W other` (Definition 3.1b): every strict order among
    /// symbols of `self` is preserved in `other`.
    ///
    /// Runs in `O(n log n)`: wires are bucketed by `self`-symbol; refinement
    /// holds iff, walking the buckets in `<_P` order, the `other`-symbol
    /// ranges of consecutive buckets are strictly separated.
    pub fn refines_to(&self, other: &Pattern) -> bool {
        assert_eq!(self.len(), other.len(), "patterns on different wire sets");
        if self.is_empty() {
            return true;
        }
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by_key(|&w| self.syms[w as usize]);
        // For each maximal run of equal self-symbols, track (min, max) of
        // other-symbols; require max(prev run) < min(next run).
        let mut prev_max: Option<Symbol> = None;
        let mut i = 0;
        while i < order.len() {
            let run_sym = self.syms[order[i] as usize];
            let mut run_min = other.syms[order[i] as usize];
            let mut run_max = run_min;
            let mut j = i;
            while j < order.len() && self.syms[order[j] as usize] == run_sym {
                let s = other.syms[order[j] as usize];
                run_min = run_min.min(s);
                run_max = run_max.max(s);
                j += 1;
            }
            if let Some(pm) = prev_max {
                if pm >= run_min {
                    return false;
                }
            }
            prev_max = Some(run_max);
            i = j;
        }
        true
    }

    /// Checks `self ⊐_U other` (Definition 3.2b): refinement that only
    /// changes wires inside `U`.
    pub fn refines_to_within(&self, other: &Pattern, u: &[WireId]) -> bool {
        if !self.refines_to(other) {
            return false;
        }
        let mut in_u = vec![false; self.len()];
        for &w in u {
            in_u[w as usize] = true;
        }
        (0..self.len()).all(|w| in_u[w] || self.syms[w] == other.syms[w])
    }

    /// Checks `self ⊐_W π` for a concrete input permutation (Definition
    /// 3.1c): value order must respect every strict symbol order.
    pub fn refines_to_input(&self, input: &[u32]) -> bool {
        assert_eq!(self.len(), input.len());
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by_key(|&w| self.syms[w as usize]);
        let mut prev_max: Option<u32> = None;
        let mut i = 0;
        while i < order.len() {
            let run_sym = self.syms[order[i] as usize];
            let mut run_min = input[order[i] as usize];
            let mut run_max = run_min;
            let mut j = i;
            while j < order.len() && self.syms[order[j] as usize] == run_sym {
                let v = input[order[j] as usize];
                run_min = run_min.min(v);
                run_max = run_max.max(v);
                j += 1;
            }
            if let Some(pm) = prev_max {
                if pm >= run_min {
                    return false;
                }
            }
            prev_max = Some(run_max);
            i = j;
        }
        true
    }

    /// Equivalence: mutual refinement (the patterns describe the same input
    /// set and differ only by an order-preserving renaming).
    pub fn equivalent(&self, other: &Pattern) -> bool {
        self.refines_to(other) && other.refines_to(self)
    }

    /// Refines the pattern to a concrete input permutation of `{0,…,n-1}`.
    /// Within each symbol class, values are assigned in ascending wire
    /// order; classes receive consecutive value blocks in `<_P` order. The
    /// result always satisfies `self ⊐_W result`.
    pub fn to_input(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        // Stable sort keeps ascending wire order within classes.
        order.sort_by_key(|&w| self.syms[w as usize]);
        let mut input = vec![0u32; self.len()];
        for (rank, &w) in order.iter().enumerate() {
            input[w as usize] = rank as u32;
        }
        input
    }

    /// Refines to a concrete input with a caller-supplied tie-break: wires
    /// within one symbol class are ranked by `tie(w)` ascending (then wire
    /// id). Useful for placing chosen adjacent values on chosen wires.
    pub fn to_input_with<F: Fn(WireId) -> u32>(&self, tie: F) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by_key(|&w| (self.syms[w as usize], tie(w), w));
        let mut input = vec![0u32; self.len()];
        for (rank, &w) in order.iter().enumerate() {
            input[w as usize] = rank as u32;
        }
        input
    }

    /// The `ρ_i` collapse of Lemma 3.4: symbols `< M_i` become `S_0`,
    /// symbols `> M_i` become `L_0`, and `M_i` becomes `M_0`. Preserves
    /// noncollision of the `[M_i]`-set.
    pub fn collapse_around_m(&self, i: u32) -> Pattern {
        let m = Symbol::M(i);
        let syms = self
            .syms
            .iter()
            .map(|&s| {
                if s < m {
                    Symbol::S(0)
                } else if s > m {
                    Symbol::L(0)
                } else {
                    Symbol::M(0)
                }
            })
            .collect();
        Pattern { syms }
    }

    /// Routes the pattern through a fixed permutation: the symbol on wire
    /// `w` moves to wire `perm(w)` (matching value routing in the network).
    pub fn route(&self, perm: &Permutation) -> Pattern {
        assert_eq!(perm.len(), self.len());
        let mut syms = self.syms.clone();
        perm.route(&self.syms, &mut syms);
        Pattern { syms }
    }

    /// Restriction of the pattern to a wire subset, re-indexed densely in
    /// the order given by `wires` (Definition 3.2a up to re-indexing).
    pub fn restrict(&self, wires: &[WireId]) -> Pattern {
        Pattern { syms: wires.iter().map(|&w| self.syms[w as usize]).collect() }
    }

    /// The canonical form of the pattern: symbols are renamed, order
    /// preserved, onto the dense prefix `M_0 < M_1 < …` of the `M` band.
    /// Since order-preserving renamings are exactly the pattern
    /// equivalences (see after Definition 3.3), two patterns are
    /// **equivalent iff their canonical forms are identical** — tested in
    /// this module and used for fast equivalence checks.
    pub fn canonicalize(&self) -> Pattern {
        // Rank the distinct symbols in <_P order.
        let mut distinct: Vec<Symbol> = self.syms.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let rank_of =
            |s: Symbol| -> u32 { distinct.binary_search(&s).expect("symbol present") as u32 };
        Pattern { syms: self.syms.iter().map(|&s| Symbol::M(rank_of(s))).collect() }
    }

    /// The combination `p₀ ⊕ p₁` of Definition 3.3: `p₀` lives on the wires
    /// `u0` and `p₁` on the disjoint wires `u1`; together they must cover
    /// `0..n`. `q|_{U₀} = p₀` and `q|_{U₁} = p₁`.
    ///
    /// Panics if the domains overlap or fail to cover `0..n`
    /// (`n = u0.len() + u1.len()`).
    pub fn combine(u0: &[WireId], p0: &Pattern, u1: &[WireId], p1: &Pattern) -> Pattern {
        assert_eq!(u0.len(), p0.len(), "p0 must live exactly on u0");
        assert_eq!(u1.len(), p1.len(), "p1 must live exactly on u1");
        let n = u0.len() + u1.len();
        let mut syms = vec![None; n];
        for (i, &w) in u0.iter().enumerate() {
            assert!(syms[w as usize].replace(p0.get(i as WireId)).is_none(), "overlap at {w}");
        }
        for (i, &w) in u1.iter().enumerate() {
            assert!(syms[w as usize].replace(p1.get(i as WireId)).is_none(), "overlap at {w}");
        }
        Pattern {
            syms: syms
                .into_iter()
                .enumerate()
                .map(|(w, s)| s.unwrap_or_else(|| panic!("wire {w} uncovered")))
                .collect(),
        }
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.syms.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use Symbol::{L, M, S, X};

    #[test]
    fn example_3_1_refinement() {
        // W = {w0..w4}; p: L on w0,w1; M on the rest. Refines to inputs
        // assigning the two largest values to w0, w1.
        let p = Pattern::from_symbols(vec![L(0), L(0), M(0), M(0), M(0)]);
        assert!(p.refines_to_input(&[3, 4, 0, 1, 2]));
        assert!(p.refines_to_input(&[4, 3, 2, 0, 1]));
        assert!(!p.refines_to_input(&[0, 4, 1, 2, 3]), "w0 must be above all M wires");

        // p' refines p: also pins w2 to Small.
        let p2 = Pattern::from_symbols(vec![L(0), L(0), S(0), M(0), M(0)]);
        assert!(p.refines_to(&p2));
        assert!(!p2.refines_to(&p), "p2 is strictly finer");
        assert!(p2.refines_to_input(&[3, 4, 0, 1, 2]));
        assert!(!p2.refines_to_input(&[3, 4, 1, 0, 2]), "w2 must be smallest");
    }

    #[test]
    fn example_3_2_equivalence_by_shift() {
        // Shifting every M index by a constant is an order-preserving
        // renaming: the patterns are equivalent.
        let p = Pattern::from_symbols(vec![M(0), M(2), M(1)]);
        let q = Pattern::from_symbols(vec![M(5), M(7), M(6)]);
        assert!(p.equivalent(&q));
        assert!(p.refines_to(&q) && q.refines_to(&p));
    }

    #[test]
    fn refinement_is_set_containment() {
        // (p0 ⊐ p1) ⇔ (p0[V] ⊇ p1[V]) — verified by enumerating all inputs
        // for a small wire count.
        let p0 = Pattern::from_symbols(vec![M(0), M(0), M(0), L(0)]);
        let p1 = Pattern::from_symbols(vec![S(0), M(0), M(0), L(0)]);
        assert!(p0.refines_to(&p1));
        let mut all0 = Vec::new();
        let mut all1 = Vec::new();
        let perms = all_perms(4);
        for input in &perms {
            if p0.refines_to_input(input) {
                all0.push(input.clone());
            }
            if p1.refines_to_input(input) {
                all1.push(input.clone());
            }
        }
        assert!(!all1.is_empty());
        for i in &all1 {
            assert!(all0.contains(i), "p1's inputs are a subset of p0's");
        }
        assert!(all0.len() > all1.len());
    }

    fn all_perms(n: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut p: Vec<u32> = (0..n as u32).collect();
        let mut c = vec![0usize; n];
        out.push(p.clone());
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    p.swap(0, i);
                } else {
                    p.swap(c[i], i);
                }
                out.push(p.clone());
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        out
    }

    #[test]
    fn to_input_always_refines() {
        let p = Pattern::from_symbols(vec![L(1), M(0), S(0), M(0), X(0, 1), L(0)]);
        let input = p.to_input();
        assert!(p.refines_to_input(&input));
        // L(1) < L(0): wire 0 gets a smaller value than wire 5.
        assert!(input[0] < input[5]);
        // S(0) smallest.
        assert_eq!(input[2], 0);
    }

    #[test]
    fn to_input_with_tiebreak_orders_class() {
        let p = Pattern::uniform(4, M(0));
        let input = p.to_input_with(|w| 3 - w);
        assert_eq!(input, vec![3, 2, 1, 0]);
        assert!(p.refines_to_input(&input));
    }

    #[test]
    fn collapse_around_m_matches_lemma_3_4() {
        let p = Pattern::from_symbols(vec![S(3), X(2, 0), M(1), M(2), X(3, 1), L(7), M(3)]);
        let c = p.collapse_around_m(2);
        assert_eq!(
            c.symbols(),
            &[S(0), S(0), S(0), M(0), L(0), L(0), L(0)],
            "everything below M_2 collapses to S_0, above to L_0"
        );
        // ρ_i is a *coarsening*: the collapsed pattern admits every input the
        // original admits (but not vice versa).
        assert!(c.refines_to(&p), "the original is a refinement of its collapse");
        assert!(c.refines_to_input(&p.to_input()));
    }

    #[test]
    fn restriction_reindexes() {
        let p = Pattern::from_symbols(vec![S(0), M(0), L(0), M(1)]);
        let r = p.restrict(&[3, 1]);
        assert_eq!(r.symbols(), &[M(1), M(0)]);
    }

    #[test]
    fn route_moves_symbols_with_values() {
        let p = Pattern::from_symbols(vec![S(0), M(0), L(0)]);
        let perm = Permutation::from_images_unchecked(vec![2, 0, 1]);
        let routed = p.route(&perm);
        assert_eq!(routed.symbols(), &[M(0), L(0), S(0)]);
    }

    #[test]
    fn refines_within_u() {
        let p = Pattern::from_symbols(vec![M(0), M(0), L(0)]);
        let q = Pattern::from_symbols(vec![M(0), M(1), L(0)]);
        assert!(p.refines_to_within(&q, &[1]));
        assert!(!p.refines_to_within(&q, &[0]), "wire 1 changed but is outside U");
    }

    #[test]
    fn canonical_forms_characterize_equivalence() {
        // Equivalent patterns canonicalize identically…
        let p = Pattern::from_symbols(vec![M(0), M(2), M(1)]);
        let q = Pattern::from_symbols(vec![M(5), M(7), M(6)]);
        let r = Pattern::from_symbols(vec![S(3), L(0), X(4, 2)]);
        assert_eq!(p.canonicalize(), q.canonicalize());
        // …including across different symbol families with the same order
        // type (S(3) < X(4,2) < L(0) has the shape 0 < 2 < 1).
        assert_eq!(p.canonicalize(), r.canonicalize());
        assert!(p.equivalent(&r));
        // Non-equivalent patterns canonicalize differently.
        let s = Pattern::from_symbols(vec![M(0), M(0), M(1)]);
        assert_ne!(p.canonicalize(), s.canonicalize());
        // The canonical form is equivalent to the original and idempotent.
        assert!(p.equivalent(&p.canonicalize()));
        assert_eq!(p.canonicalize().canonicalize(), p.canonicalize());
    }

    proptest! {
        #[test]
        fn canonicalization_agrees_with_mutual_refinement(
            a in arb_small_pattern(5),
            b in arb_small_pattern(5),
        ) {
            prop_assert_eq!(a.equivalent(&b), a.canonicalize() == b.canonicalize());
        }
    }

    #[test]
    fn combine_definition_3_3() {
        let p0 = Pattern::from_symbols(vec![S(0), M(0)]);
        let p1 = Pattern::from_symbols(vec![L(0), M(1)]);
        let q = Pattern::combine(&[0, 2], &p0, &[3, 1], &p1);
        assert_eq!(q.symbols(), &[S(0), M(1), M(0), L(0)]);
        // Restrictions recover the parts.
        assert_eq!(q.restrict(&[0, 2]), p0);
        assert_eq!(q.restrict(&[3, 1]), p1);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn combine_rejects_overlap() {
        let p = Pattern::from_symbols(vec![M(0)]);
        let _ = Pattern::combine(&[0], &p, &[0], &p);
    }

    #[test]
    fn symbol_sets() {
        let p = Pattern::from_symbols(vec![M(0), S(0), M(0), L(0)]);
        assert_eq!(p.symbol_set(M(0)), vec![0, 2]);
        assert_eq!(p.symbol_count(M(0)), 2);
        assert_eq!(p.symbol_set(M(9)), Vec::<u32>::new());
    }

    fn arb_small_pattern(n: usize) -> impl Strategy<Value = Pattern> {
        proptest::collection::vec(
            prop_oneof![
                (0u32..3).prop_map(S),
                ((0u32..3), (0u32..3)).prop_map(|(i, j)| X(i, j)),
                (0u32..3).prop_map(M),
                (0u32..3).prop_map(L),
            ],
            n,
        )
        .prop_map(Pattern::from_symbols)
    }

    proptest! {
        #[test]
        fn refinement_is_reflexive_and_to_input_consistent(p in arb_small_pattern(6)) {
            prop_assert!(p.refines_to(&p));
            prop_assert!(p.refines_to_input(&p.to_input()));
        }

        #[test]
        fn collapse_is_coarsening_and_transitivity_holds(p in arb_small_pattern(5)) {
            // c = ρ_1(p) is coarser: c ⊐ p ⊐ to_input(p), hence c ⊐ to_input(p).
            let c = p.collapse_around_m(1);
            prop_assert!(c.refines_to(&p));
            let input = p.to_input();
            prop_assert!(p.refines_to_input(&input));
            prop_assert!(c.refines_to_input(&input), "transitivity through the collapse");
        }

        #[test]
        fn route_then_restrict_consistent(p in arb_small_pattern(8), seed in 0u64..1000) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let perm = Permutation::random(8, &mut rng);
            let routed = p.route(&perm);
            for w in 0..8u32 {
                prop_assert_eq!(routed.get(perm.apply(w as usize) as u32), p.get(w));
            }
        }
    }
}
