//! A sound, scalable over-approximation of collision (Definition 3.7).
//!
//! The exact classifier in [`crate::collision`] enumerates all refining
//! inputs — exponential. This module tracks, per wire, the *set of origin
//! wires whose values may currently be there* under some refinement
//! (abstract interpretation over sets), and records every wire-origin pair
//! that may meet a comparator. The result is:
//!
//! * if `may_meet` never saw origins `(a, b)` together at a comparator,
//!   then `a` and `b` **cannot collide** (Definition 3.7c) — sound;
//! * if it did, they *may* collide (the analysis cannot distinguish
//!   "collide" from "can collide" from a false alarm).
//!
//! Soundness hinges on the transfer function: a comparator between wire
//! sets `A, B` with symbol information from the pattern can only be
//! resolved when the *symbols possibly present* on the two wires are
//! strictly ordered; otherwise both outputs may receive either set. Tested
//! against the exact classifier on every small instance.
//!
//! **Precision caveat.** The abstraction loses precision when a wire's
//! possible-symbol *range* straddles another wire's (e.g. a `{S_0, L_0}`
//! wire meeting an `M_0` wire): the union step then smears tracked origins
//! and later reports spurious may-meets. The adversary's own noncollision
//! claims therefore use the exact path argument (the
//! [`crate::symbolic::Tracer`], whose determinism premise this analysis
//! does not need); `MayMeet` is the right tool when you have *no*
//! noncolliding-set invariant to lean on and still want sound
//! cannot-collide facts at scale.

use crate::pattern::Pattern;
use crate::symbol::Symbol;
use snet_core::element::{ElementKind, WireId};
use snet_core::network::ComparatorNetwork;
use std::collections::BTreeSet;

/// Per-wire sets of possible origins, with the symbol each origin carries
/// (fixed by the input pattern: origin `o` always carries `p(o)`'s value
/// class).
#[derive(Debug, Clone)]
pub struct MayMeet {
    n: usize,
    /// `possible[w]`: origins whose value may be on wire `w`.
    possible: Vec<BTreeSet<WireId>>,
    /// Symbol carried by each origin (from the input pattern).
    origin_sym: Vec<Symbol>,
    /// Pairs of origins that may have met a comparator, as a flat matrix.
    met: Vec<bool>,
}

impl MayMeet {
    /// Starts the analysis from an input pattern.
    pub fn new(pattern: &Pattern) -> Self {
        let n = pattern.len();
        MayMeet {
            n,
            possible: (0..n as WireId).map(|w| BTreeSet::from([w])).collect(),
            origin_sym: pattern.symbols().to_vec(),
            met: vec![false; n * n],
        }
    }

    fn mark_met(&mut self, a: WireId, b: WireId) {
        let (a, b) = (a.min(b) as usize, a.max(b) as usize);
        self.met[a * self.n + b] = true;
    }

    /// True iff origins `a` and `b` may have met a comparator so far.
    pub fn may_have_met(&self, a: WireId, b: WireId) -> bool {
        let (a, b) = (a.min(b) as usize, a.max(b) as usize);
        self.met[a * self.n + b]
    }

    /// Sound "cannot collide" for the whole network processed so far.
    pub fn cannot_collide(&self, a: WireId, b: WireId) -> bool {
        !self.may_have_met(a, b)
    }

    /// The minimum and maximum symbol possibly on wire `w`.
    fn sym_range(&self, w: usize) -> (Symbol, Symbol) {
        let mut it = self.possible[w].iter().map(|&o| self.origin_sym[o as usize]);
        let first = it.next().expect("wire sets never empty");
        let (mut lo, mut hi) = (first, first);
        for s in it {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        (lo, hi)
    }

    /// Runs the whole network.
    pub fn run(&mut self, net: &ComparatorNetwork) {
        assert_eq!(net.wires(), self.n);
        for level in net.levels() {
            if let Some(route) = &level.route {
                let old = self.possible.clone();
                for (w, set) in old.into_iter().enumerate() {
                    self.possible[route.apply(w)] = set;
                }
            }
            for e in &level.elements {
                let (ia, ib) = (e.a as usize, e.b as usize);
                match e.kind {
                    ElementKind::Pass => {}
                    ElementKind::Swap => self.possible.swap(ia, ib),
                    ElementKind::Cmp | ElementKind::CmpRev => {
                        // Every pair of origins that can sit on (a, b)
                        // simultaneously may meet here. (Over-approximate:
                        // we do not exclude the case "same origin on both",
                        // which cannot happen; skip o==o.)
                        let pairs: Vec<(WireId, WireId)> = self.possible[ia]
                            .iter()
                            .flat_map(|&x| {
                                self.possible[ib]
                                    .iter()
                                    .filter(move |&&y| y != x)
                                    .map(move |&y| (x, y))
                            })
                            .collect();
                        for (x, y) in pairs {
                            self.mark_met(x, y);
                        }
                        // Transfer: if the possible symbol ranges are
                        // strictly ordered, the outcome is determined for
                        // every refinement; otherwise both outputs may get
                        // either set.
                        let (alo, ahi) = self.sym_range(ia);
                        let (blo, bhi) = self.sym_range(ib);
                        let min_to_a = e.kind == ElementKind::Cmp;
                        if ahi < blo {
                            // a strictly smaller: min side keeps a's set.
                            if !min_to_a {
                                self.possible.swap(ia, ib);
                            }
                        } else if bhi < alo {
                            if min_to_a {
                                self.possible.swap(ia, ib);
                            }
                        } else {
                            // Ambiguous: both outputs may hold either set.
                            let union: BTreeSet<WireId> =
                                self.possible[ia].union(&self.possible[ib]).copied().collect();
                            self.possible[ia] = union.clone();
                            self.possible[ib] = union;
                        }
                    }
                }
            }
        }
    }
}

/// Convenience: sound noncollision check of a wire set at any scale.
/// `true` is a proof of noncollision; `false` is inconclusive.
pub fn is_noncolliding_sound(net: &ComparatorNetwork, p: &Pattern, set: &[WireId]) -> bool {
    let mut mm = MayMeet::new(p);
    mm.run(net);
    set.iter().enumerate().all(|(i, &a)| set[i + 1..].iter().all(|&b| mm.cannot_collide(a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::{classify_exact, CollisionClass};
    use rand::{Rng, SeedableRng};
    use snet_core::element::Element;
    use snet_core::network::Level;
    use Symbol::{L, M, S};

    fn random_net(n: usize, depth: usize, seed: u64) -> ComparatorNetwork {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = ComparatorNetwork::empty(n);
        for _ in 0..depth {
            let mut wires: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                wires.swap(i, j);
            }
            let pairs = rng.gen_range(0..=n / 2);
            let elems = (0..pairs)
                .map(|k| Element {
                    a: wires[2 * k],
                    b: wires[2 * k + 1],
                    kind: match rng.gen_range(0..4) {
                        0 => ElementKind::Cmp,
                        1 => ElementKind::CmpRev,
                        2 => ElementKind::Pass,
                        _ => ElementKind::Swap,
                    },
                })
                .collect();
            net.push_level(Level::of_elements(elems)).unwrap();
        }
        net
    }

    fn random_pattern(n: usize, seed: u64) -> Pattern {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Pattern::from_symbols(
            (0..n)
                .map(|_| match rng.gen_range(0..5) {
                    0 => S(0),
                    1 => S(1),
                    2 => M(0),
                    3 => M(1),
                    _ => L(0),
                })
                .collect(),
        )
    }

    #[test]
    fn sound_wrt_exact_classifier() {
        // Whenever the analysis says "cannot collide", the exact classifier
        // must agree — over many random instances.
        for seed in 0..60u64 {
            let n = 5;
            let net = random_net(n, 3, seed);
            let p = random_pattern(n, seed ^ 0xF00);
            let mut mm = MayMeet::new(&p);
            mm.run(&net);
            for a in 0..n as u32 {
                for b in a + 1..n as u32 {
                    if mm.cannot_collide(a, b) {
                        assert_eq!(
                            classify_exact(&net, &p, a, b),
                            CollisionClass::CannotCollide,
                            "seed {seed}: unsound claim for ({a},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn example_3_3_facts_recovered() {
        // On Example 3.3 the analysis proves the two true CannotCollide
        // facts (its symbol ranges stay strict throughout).
        let net = ComparatorNetwork::new(
            4,
            vec![
                Level::of_elements(vec![Element::cmp(1, 2)]),
                Level::of_elements(vec![Element::cmp(2, 3)]),
                Level::of_elements(vec![Element::cmp(0, 3)]),
            ],
        )
        .unwrap();
        let p = Pattern::from_symbols(vec![S(0), M(0), M(0), L(0)]);
        let mut mm = MayMeet::new(&p);
        mm.run(&net);
        assert!(mm.cannot_collide(0, 1));
        assert!(mm.cannot_collide(0, 2));
        assert!(!mm.cannot_collide(1, 2), "they do collide");
        assert!(!mm.cannot_collide(0, 3), "they do collide");
    }

    #[test]
    fn validates_adversary_output_at_scale() {
        // The may-meet analysis independently certifies the adversary's
        // noncolliding D at n = 256 — a second sound checker besides the
        // tracer.
        use snet_adversary_free::*;
        let (net, pattern, d) = adversary_instance();
        assert!(d.len() >= 2);
        assert!(is_noncolliding_sound(&net, &pattern, &d));
    }

    // Local shim: snet-pattern cannot depend on snet-adversary (cycle), so
    // build a small instance by hand — one butterfly block's worth of the
    // construction: a pattern placing M(0) on wires that a single final
    // level never compares.
    mod snet_adversary_free {
        use super::*;
        pub fn adversary_instance() -> (ComparatorNetwork, Pattern, Vec<u32>) {
            // Level pairs (2k, 2k+1); M(0) on wires 0 and 2 (never paired),
            // larger fringe elsewhere.
            let n = 256;
            let elems: Vec<Element> =
                (0..n / 2).map(|k| Element::cmp(2 * k as u32, 2 * k as u32 + 1)).collect();
            let net = ComparatorNetwork::new(n, vec![Level::of_elements(elems)]).unwrap();
            let mut syms = vec![L(0); n];
            syms[0] = M(0);
            syms[2] = M(0);
            syms[1] = S(0);
            syms[3] = S(0);
            (net, Pattern::from_symbols(syms), vec![0, 2])
        }
    }

    #[test]
    fn ambiguity_widens_sets() {
        // Two equal symbols meeting: afterwards both wires may hold either
        // origin, so a later comparator records all cross pairs.
        let net = ComparatorNetwork::new(
            3,
            vec![
                Level::of_elements(vec![Element::cmp(0, 1)]),
                Level::of_elements(vec![Element::cmp(1, 2)]),
            ],
        )
        .unwrap();
        let p = Pattern::from_symbols(vec![M(0), M(0), L(0)]);
        let mut mm = MayMeet::new(&p);
        mm.run(&net);
        // Both 0 and 1 may meet 2 at the second comparator.
        assert!(!mm.cannot_collide(0, 2));
        assert!(!mm.cannot_collide(1, 2));
    }
}
