//! A Shellsort network with Pratt's `{2^a · 3^b}` increments — the
//! `Θ(lg²n)`-depth member of the Shellsort-network class for which
//! Cypher's lower bound (cited in Section 1 of the paper) shows
//! `Ω(lg²n / lg lg n)`: context for how tight that class's story is.
//!
//! Pratt's theorem: if the data is already `2h`-sorted and `3h`-sorted,
//! then one compare-exchange sweep of `(i, i+h)` makes it `h`-sorted.
//! Processing the increments in decreasing order therefore needs only two
//! comparator levels per increment (pairs `(i, i+h)` split by the parity of
//! `⌊i/h⌋` for wire-disjointness), for `Θ(lg²n)` total depth.

use snet_core::element::Element;
use snet_core::network::ComparatorNetwork;

/// Pratt's increment sequence: all `2^a · 3^b < n`, sorted decreasing.
pub fn pratt_increments(n: usize) -> Vec<usize> {
    let mut incs = Vec::new();
    let mut pow2 = 1usize;
    while pow2 < n {
        let mut h = pow2;
        while h < n {
            incs.push(h);
            h = h.saturating_mul(3);
        }
        pow2 = pow2.saturating_mul(2);
    }
    incs.sort_unstable_by(|a, b| b.cmp(a));
    incs
}

/// The Pratt Shellsort network on `n` wires (any `n ≥ 1`).
pub fn pratt_network(n: usize) -> ComparatorNetwork {
    let mut net = ComparatorNetwork::empty(n);
    for h in pratt_increments(n) {
        // One sweep of (i, i+h), split into two wire-disjoint levels by the
        // parity of ⌊i/h⌋.
        for parity in 0..2usize {
            let elements: Vec<Element> = (0..n.saturating_sub(h))
                .filter(|i| (i / h) % 2 == parity)
                .map(|i| Element::cmp(i as u32, (i + h) as u32))
                .collect();
            if !elements.is_empty() {
                net.push_elements(elements).expect("parity split is wire-disjoint");
            }
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::sortcheck::check_zero_one_exhaustive;

    #[test]
    fn increments_are_3_smooth_and_decreasing() {
        let incs = pratt_increments(100);
        assert!(incs.contains(&1) && incs.contains(&2) && incs.contains(&3));
        assert!(incs.contains(&96) && !incs.contains(&100));
        for w in incs.windows(2) {
            assert!(w[0] > w[1]);
        }
        for &h in &incs {
            let mut x = h;
            while x % 2 == 0 {
                x /= 2;
            }
            while x % 3 == 0 {
                x /= 3;
            }
            assert_eq!(x, 1, "{h} is not 3-smooth");
        }
    }

    #[test]
    fn sorts_exhaustively() {
        for n in [1usize, 2, 3, 4, 6, 8, 12, 16] {
            let net = pratt_network(n);
            assert!(check_zero_one_exhaustive(&net).is_sorting(), "n={n}");
        }
    }

    #[test]
    fn depth_is_theta_lg_squared() {
        // #increments ≈ lg²n / (2 lg 3); two levels each.
        for l in [4usize, 6, 8] {
            let n = 1 << l;
            let net = pratt_network(n);
            let lg2 = (l * l) as f64;
            let d = net.depth() as f64;
            assert!(d <= 1.5 * lg2 && d >= lg2 / 4.0, "depth {d} vs lg² {lg2}");
        }
    }
}
