//! ε-halvers and approximate sorting — the measurable stand-in for the
//! AKS/Leighton–Plaxton style circuits the paper cites (see DESIGN.md's
//! substitution table).
//!
//! An **ε-halver** on `n` wires guarantees that, for every `k ≤ n/2`, at
//! most `ε·k` of the `k` smallest values end up in the top half (and
//! symmetrically for the largest). Constant-depth halvers exist via
//! expanders; sampling **random top/bottom matchings** gives an excellent
//! halver with high probability, which is what [`random_halver`] does
//! (construction is seeded and fixed — the resulting object is an ordinary
//! deterministic comparator network whose ε we *measure*, E14).
//!
//! Recursively halving yields an approximate sorter whose dislocation
//! decays geometrically with halver depth; a short odd-even-transposition
//! cleanup then sorts *most* inputs exactly. The resulting family has a
//! smooth fraction-sorted-vs-depth profile — the qualitative behaviour the
//! Section 5 average-case discussion requires (contrast bitonic's cliff,
//! E7) — at `O(lg n + cleanup)` depth.

use rand::Rng;
use snet_core::element::Element;
use snet_core::network::ComparatorNetwork;

/// A depth-`d` candidate ε-halver on `n` wires (`n` even): each level is a
/// uniformly random perfect matching between the bottom-index half and the
/// top-index half, comparators directed min-to-lower-half.
pub fn random_halver<R: Rng>(n: usize, depth: usize, rng: &mut R) -> ComparatorNetwork {
    assert!(n >= 2 && n.is_multiple_of(2), "halvers need an even wire count");
    let half = n / 2;
    let mut net = ComparatorNetwork::empty(n);
    for _ in 0..depth {
        let mut tops: Vec<u32> = (half as u32..n as u32).collect();
        for i in (1..tops.len()).rev() {
            let j = rng.gen_range(0..=i);
            tops.swap(i, j);
        }
        let elements: Vec<Element> = (0..half).map(|i| Element::cmp(i as u32, tops[i])).collect();
        net.push_elements(elements).expect("matchings are wire-disjoint");
    }
    net
}

/// Measures the halver quality of `net` empirically on `trials` random 0-1
/// inputs with exactly `k` ones for each `k ≤ n/2`: returns the maximum
/// observed fraction of the `k` largest values stranded in the bottom half
/// (an upper estimate of ε; 0.0 is perfect).
pub fn measure_epsilon<R: Rng>(net: &ComparatorNetwork, trials: usize, rng: &mut R) -> f64 {
    let n = net.wires();
    let half = n / 2;
    let exec = snet_core::ir::Executor::compile(net);
    let mut worst: f64 = 0.0;
    for _ in 0..trials {
        let k = rng.gen_range(1..=half);
        // Random placement of k ones (the k largest).
        let mut input = vec![0u32; n];
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        for &i in idx.iter().take(k) {
            input[i] = 1;
        }
        let out = exec.evaluate(&input);
        // Ones belong in the top half; count strays in the bottom half.
        let stray = out[..half].iter().filter(|&&v| v == 1).count();
        worst = worst.max(stray as f64 / k as f64);
    }
    worst
}

/// A recursive halver tree: apply a fresh random halver to the full range,
/// then recurse into both halves, down to ranges of 2. Depth is
/// `halver_depth · lg n`; the result is an *approximate* sorter.
pub fn halver_tree<R: Rng>(n: usize, halver_depth: usize, rng: &mut R) -> ComparatorNetwork {
    assert!(n.is_power_of_two() && n >= 2);
    fn rec<R: Rng>(net: &mut ComparatorNetwork, lo: u32, len: usize, depth: usize, rng: &mut R) {
        if len < 2 {
            return;
        }
        let half = len / 2;
        for _ in 0..depth {
            let mut tops: Vec<u32> = (lo + half as u32..lo + len as u32).collect();
            for i in (1..tops.len()).rev() {
                let j = rng.gen_range(0..=i);
                tops.swap(i, j);
            }
            let elements: Vec<Element> =
                (0..half).map(|i| Element::cmp(lo + i as u32, tops[i])).collect();
            net.push_elements(elements).expect("disjoint within the range");
        }
        rec(net, lo, half, depth, rng);
        rec(net, lo + half as u32, half, depth, rng);
    }
    let mut net = ComparatorNetwork::empty(n);
    // Note: the two half-recursions could share levels (they are wire
    // disjoint); we keep them sequential for clarity — the depth reported
    // by `parallel_depth` below accounts for the parallel packing.
    rec(&mut net, 0, n, halver_depth, rng);
    net
}

/// The depth of [`halver_tree`] when sibling ranges run in parallel:
/// `halver_depth · lg n`.
pub fn halver_tree_parallel_depth(n: usize, halver_depth: usize) -> usize {
    halver_depth * n.trailing_zeros() as usize
}

/// An approximate-then-cleanup sorter: a halver tree followed by `cleanup`
/// rounds of odd-even transposition. Sorts exactly whenever the tree
/// leaves every value within `cleanup` positions of home — which for
/// random inputs happens at small constant `halver_depth`.
pub fn halver_sorter<R: Rng>(
    n: usize,
    halver_depth: usize,
    cleanup: usize,
    rng: &mut R,
) -> ComparatorNetwork {
    let mut net = halver_tree(n, halver_depth, rng);
    for round in 0..cleanup {
        let start = round % 2;
        let elements: Vec<Element> = (start..n.saturating_sub(1))
            .step_by(2)
            .map(|i| Element::cmp(i as u32, i as u32 + 1))
            .collect();
        if !elements.is_empty() {
            net.push_elements(elements).expect("brick rounds are disjoint");
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use snet_core::sortcheck::{fraction_sorted, is_sorted};

    #[test]
    fn random_halver_beats_trivial_epsilon() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 128;
        // Depth 1 (a single random matching) is a poor halver; depth 6 is
        // a good one.
        let shallow = random_halver(n, 1, &mut rng);
        let deep = random_halver(n, 6, &mut rng);
        let e_shallow = measure_epsilon(&shallow, 400, &mut rng);
        let e_deep = measure_epsilon(&deep, 400, &mut rng);
        assert!(e_deep < e_shallow, "more matchings halve better: {e_deep} vs {e_shallow}");
        assert!(e_deep < 0.45, "depth-6 random halver should be decent: {e_deep}");
    }

    #[test]
    fn halver_tree_reduces_dislocation() {
        use snet_analysis_free::mean_dislocation;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let n = 256;
        let tree = halver_tree(n, 4, &mut rng);
        let exec = snet_core::ir::Executor::compile(&tree);
        let mut total = 0.0;
        for _ in 0..50 {
            let input = snet_core::perm::Permutation::random(n, &mut rng);
            let out = exec.evaluate(input.images());
            total += mean_dislocation(&out);
        }
        let mean = total / 50.0;
        assert!(
            mean < n as f64 / 16.0,
            "halver tree should bring mean dislocation well below random (~n/3): {mean}"
        );
    }

    // A tiny local reimplementation to avoid a dependency cycle with
    // snet-analysis (which depends on nothing here, but sorters must not
    // depend on analysis).
    mod snet_analysis_free {
        pub fn mean_dislocation(v: &[u32]) -> f64 {
            if v.is_empty() {
                return 0.0;
            }
            let total: u64 =
                v.iter().enumerate().map(|(i, &x)| (x as i64 - i as i64).unsigned_abs()).sum();
            total as f64 / v.len() as f64
        }
    }

    #[test]
    fn halver_sorter_sorts_most_random_inputs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 64;
        let net = halver_sorter(n, 6, 16, &mut rng);
        let f = fraction_sorted(&net, 1000, &mut rng);
        assert!(f > 0.5, "halver+cleanup should sort most random inputs, got {f}");
        // But it is NOT a sorting network (worst case exists).
        assert!(
            !snet_core::sortcheck::check_random_permutations(&net, 200_000, &mut rng).is_sorting()
                || f < 1.0 + 1e-9
        );
    }

    #[test]
    fn cleanup_monotonically_helps() {
        let n = 64;
        let mut fractions = Vec::new();
        for cleanup in [0usize, 8, 24] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(10);
            let net = halver_sorter(n, 5, cleanup, &mut rng);
            let mut rng2 = rand::rngs::StdRng::seed_from_u64(11);
            fractions.push(fraction_sorted(&net, 600, &mut rng2));
        }
        assert!(fractions[0] <= fractions[1] + 0.05);
        assert!(fractions[1] <= fractions[2] + 0.05);
    }

    #[test]
    fn sorted_input_stays_sorted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let net = halver_sorter(32, 3, 4, &mut rng);
        let input: Vec<u32> = (0..32).collect();
        assert!(is_sorted(&snet_core::ir::evaluate(&net, &input)));
    }
}
