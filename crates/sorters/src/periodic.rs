//! The periodic balanced sorting network of Dowd, Perl, Rudolph and Saks:
//! `lg n` *identical* blocks of `lg n` levels each. Level `t` of a block
//! compares each wire `x` with its reflection within its current chunk —
//! i.e. with `x XOR (2^{lg n − t + 1} − 1)`.
//!
//! Included as a second `Θ(lg²n)` baseline with yet another topology
//! (XOR-mask pairing, so *not* a reverse delta network): the experiments
//! contrast which baselines the Section 4 adversary formally covers.

use snet_core::element::Element;
use snet_core::network::ComparatorNetwork;

/// One balanced block on `n = 2^l` wires (`l` levels).
pub fn balanced_block(n: usize) -> ComparatorNetwork {
    assert!(n.is_power_of_two() && n >= 2);
    let l = n.trailing_zeros() as usize;
    let mut net = ComparatorNetwork::empty(n);
    for t in 1..=l {
        let mask = (1u32 << (l - t + 1)) - 1;
        let elements: Vec<Element> =
            (0..n as u32).filter(|&x| (x ^ mask) > x).map(|x| Element::cmp(x, x ^ mask)).collect();
        net.push_elements(elements).expect("reflection pairs are disjoint");
    }
    net
}

/// The full periodic balanced sorting network: `lg n` identical blocks,
/// total depth `lg²n`.
pub fn periodic_balanced(n: usize) -> ComparatorNetwork {
    let l = n.trailing_zeros() as usize;
    let block = balanced_block(n);
    let mut net = ComparatorNetwork::empty(n);
    for _ in 0..l {
        net = net.then(None, &block);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::sortcheck::{check_zero_one_exhaustive, fraction_sorted};

    #[test]
    fn sorts_exhaustively() {
        for l in 1..=4usize {
            let n = 1 << l;
            let net = periodic_balanced(n);
            assert!(check_zero_one_exhaustive(&net).is_sorting(), "n={n}");
        }
    }

    #[test]
    fn depth_is_lg_squared() {
        for l in 1..=6usize {
            let n = 1 << l;
            assert_eq!(periodic_balanced(n).depth(), l * l);
        }
    }

    #[test]
    fn fewer_blocks_do_not_sort() {
        // The periodicity is tight: lg n − 1 blocks are not enough.
        let n = 16;
        let block = balanced_block(n);
        let mut net = ComparatorNetwork::empty(n);
        for _ in 0..3 {
            net = net.then(None, &block);
        }
        assert!(!check_zero_one_exhaustive(&net).is_sorting());
    }

    #[test]
    fn single_block_improves_sortedness() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 16;
        let one = balanced_block(n);
        let f1 = fraction_sorted(&one, 2000, &mut rng);
        assert!(f1 < 0.5, "one block can't sort much: {f1}");
    }
}
