//! Batcher's odd-even mergesort network — the other classic `Θ(lg²n)`
//! sorter from [Batcher 68], used as a cross-check baseline (it is *not*
//! shuffle-based, which makes it a useful contrast in the experiments).

use snet_core::element::Element;
use snet_core::network::ComparatorNetwork;

/// Builds Batcher's odd-even merge-sort network on `n = 2^l` wires
/// (depth `l(l+1)/2`, size `(l² − l + 4)·2^{l-2} − 1` for `l ≥ 1`).
pub fn odd_even_mergesort(n: usize) -> ComparatorNetwork {
    assert!(n.is_power_of_two() && n >= 1);
    // Iterative formulation: one level per (p, k) pair.
    let mut net = ComparatorNetwork::empty(n);
    let mut p = 1usize;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut elements = Vec::new();
            let mut j = k % p;
            while k < n && j + k < n {
                let upper = (k - 1).min(n - j - k - 1);
                for i in 0..=upper {
                    // Only compare within the same 2p-sized merge region.
                    if (j + i) / (2 * p) == (j + i + k) / (2 * p) {
                        elements.push(Element::cmp((j + i) as u32, (j + i + k) as u32));
                    }
                }
                j += 2 * k;
            }
            if !elements.is_empty() {
                net.push_elements(elements).expect("odd-even levels are disjoint");
            }
            k /= 2;
        }
        p *= 2;
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::sortcheck::check_zero_one_exhaustive;

    #[test]
    fn sorts_exhaustively() {
        for l in 0..=4usize {
            let n = 1 << l;
            let net = odd_even_mergesort(n);
            assert!(check_zero_one_exhaustive(&net).is_sorting(), "n={n}");
        }
    }

    #[test]
    fn depth_is_batcher() {
        for l in 1..=6usize {
            let n = 1 << l;
            let net = odd_even_mergesort(n);
            assert_eq!(net.depth(), l * (l + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn smaller_than_bitonic() {
        for l in 2..=7usize {
            let n = 1 << l;
            let oe = odd_even_mergesort(n);
            let bt = crate::bitonic::bitonic_circuit(n);
            assert!(oe.size() < bt.size(), "odd-even beats bitonic in size at n={n}");
        }
    }
}
