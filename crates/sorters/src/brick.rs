//! Brick-wall (odd-even transposition) and insertion-style networks:
//! `Θ(n)`-depth ground-truth sorters for tiny instances and baselines for
//! the depth tables.

use snet_core::element::Element;
use snet_core::network::ComparatorNetwork;

/// The odd-even transposition ("brick wall") network: `n` alternating
/// levels of adjacent comparators. Always sorts.
pub fn brick_wall(n: usize) -> ComparatorNetwork {
    let mut net = ComparatorNetwork::empty(n);
    for round in 0..n {
        let start = round % 2;
        let elements: Vec<Element> = (start..n.saturating_sub(1))
            .step_by(2)
            .map(|i| Element::cmp(i as u32, i as u32 + 1))
            .collect();
        if !elements.is_empty() {
            net.push_elements(elements).expect("brick levels are disjoint");
        }
    }
    net
}

/// The triangular insertion-sort network (equivalently bubble sort as a
/// network — Knuth 5.3.4 notes they are the same network): depth `2n − 3`,
/// size `n(n−1)/2`.
pub fn insertion_network(n: usize) -> ComparatorNetwork {
    let mut net = ComparatorNetwork::empty(n);
    if n < 2 {
        return net;
    }
    // Diagonal schedule: level d contains comparators (i, i+1) with
    // i + 1 ≤ d, i ≡ d (mod 2) … the standard parallel insertion triangle.
    for d in 0..(2 * n - 3) {
        let mut elements = Vec::new();
        for i in 0..n - 1 {
            // Comparator (i, i+1) fires at levels d = i, i+2, i+4, …,
            // within the triangle bound d < 2n - 3 - i … use the classic
            // "brick triangle": include when d >= i and (d - i) even and
            // d < 2 * (n - 1) - i.
            if d >= i && (d - i) % 2 == 0 && d < 2 * (n - 1) - i {
                elements.push(Element::cmp(i as u32, i as u32 + 1));
            }
        }
        if !elements.is_empty() {
            net.push_elements(elements).expect("triangle levels are disjoint");
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::sortcheck::check_zero_one_exhaustive;

    #[test]
    fn brick_wall_sorts() {
        for n in 1..=10usize {
            assert!(check_zero_one_exhaustive(&brick_wall(n)).is_sorting(), "n={n}");
        }
    }

    #[test]
    fn brick_wall_depth_and_size() {
        let net = brick_wall(8);
        assert_eq!(net.depth(), 8);
        assert_eq!(net.size(), 8 / 2 * 4 + 3 * 4, "4+3 alternating over 8 rounds");
    }

    #[test]
    fn insertion_sorts() {
        for n in 1..=10usize {
            assert!(check_zero_one_exhaustive(&insertion_network(n)).is_sorting(), "n={n}");
        }
    }

    #[test]
    fn insertion_size_is_triangular() {
        for n in 2..=10usize {
            assert_eq!(insertion_network(n).size(), n * (n - 1) / 2, "n={n}");
        }
    }
}
