//! # snet-sorters — upper-bound baselines
//!
//! The sorting networks the paper positions its bound against:
//!
//! * [`bitonic`] — Batcher's bitonic sorter, in circuit form and as a
//!   genuine shuffle-based network (the `Θ(lg²n)` upper bound);
//! * [`odd_even`] — Batcher's odd-even mergesort;
//! * [`pratt`] — the Pratt-increment Shellsort network (`Θ(lg²n)`;
//!   Cypher-bound class context);
//! * [`periodic`] — the Dowd–Perl–Rudolph–Saks periodic balanced sorter;
//! * [`brick`] — odd-even transposition and insertion triangles (tiny-n
//!   ground truth);
//! * [`randomized`] — truncated sorters and randomizing elements for the
//!   Section 5 average-case discussion.

//!
//! ## Example
//!
//! ```
//! use snet_core::sortcheck::check_zero_one_exhaustive;
//! use snet_sorters::bitonic_shuffle;
//!
//! let sorter = bitonic_shuffle(16); // Π_i = σ at every stage
//! assert_eq!(sorter.to_network().comparator_depth(), 10); // lg n(lg n+1)/2
//! assert!(check_zero_one_exhaustive(&sorter.to_network()).is_sorting());
//! ```

#![warn(missing_docs)]

pub mod bitonic;
pub mod brick;
pub mod halver;
pub mod merge;
pub mod odd_even;
pub mod periodic;
pub mod pratt;
pub mod randomized;

pub use bitonic::{bitonic_circuit, bitonic_flip, bitonic_shuffle};
pub use brick::{brick_wall, insertion_network};
pub use merge::{bitonic_merger, odd_even_merger};
pub use odd_even::odd_even_mergesort;
pub use periodic::periodic_balanced;
pub use pratt::pratt_network;
