//! Average-case and randomized-circuit material for the Section 5
//! discussion (Experiment E7).
//!
//! The paper observes that its worst-case bound cannot extend to average
//! case or randomized complexity, citing the Leighton–Plaxton circuit \[8\]
//! (an `O(lg n lg lg n)`-depth shuffle-based circuit sorting all but a
//! small fraction of inputs). Reconstructing \[8\] is out of scope (see
//! DESIGN.md); instead this module provides the measurable ingredients the
//! Section 5 argument rests on:
//!
//! * **truncated sorters** ([`bitonic_prefix`]) — prefixes of a
//!   `Θ(lg²n)` sorter, whose *fraction of random inputs sorted* climbs to 1
//!   well before full depth, demonstrating the average/worst-case gap the
//!   paper exploits;
//! * **randomizing elements** ([`randomizing_block`]) — the `1`-with-
//!   probability-½ exchange elements of \[8\], sampled at construction, which
//!   turn a fixed input distribution into a near-uniform one (measured in
//!   E7 via output dislocation).

use rand::Rng;
use snet_core::element::ElementKind;
use snet_core::network::ComparatorNetwork;
use snet_topology::ShuffleNetwork;

/// The first `stages` stages of the shuffle-based bitonic sorter.
pub fn bitonic_prefix(n: usize, stages: usize) -> ShuffleNetwork {
    let full = crate::bitonic::bitonic_shuffle(n);
    let kept = full.stages().iter().take(stages).cloned().collect();
    ShuffleNetwork::new(n, kept)
}

/// A block of `depth` shuffle stages whose elements are sampled as
/// `Swap`/`Pass` with probability ½ each — the "randomizing circuit
/// element" of Section 5 materialized as an ordinary (sampled) network.
/// Applying `lg n` of these approximates a uniform relabeling.
pub fn randomizing_block<R: Rng>(n: usize, depth: usize, rng: &mut R) -> ShuffleNetwork {
    let stages = (0..depth)
        .map(|_| {
            (0..n / 2)
                .map(|_| if rng.gen_bool(0.5) { ElementKind::Swap } else { ElementKind::Pass })
                .collect()
        })
        .collect();
    ShuffleNetwork::new(n, stages)
}

/// A randomized sorter candidate: a randomizing prefix followed by a
/// truncated bitonic suffix. Fraction-sorted is measured in E7 as a
/// function of the suffix depth.
pub fn randomized_then_bitonic<R: Rng>(
    n: usize,
    random_depth: usize,
    bitonic_stages: usize,
    rng: &mut R,
) -> ComparatorNetwork {
    let head = randomizing_block(n, random_depth, rng).to_network();
    let tail = bitonic_prefix(n, bitonic_stages).to_network();
    head.then(None, &tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use snet_core::sortcheck::{check_zero_one_exhaustive, fraction_sorted};

    #[test]
    fn full_prefix_is_the_full_sorter() {
        let n = 16;
        let l = 4;
        let full = bitonic_prefix(n, l * l);
        assert!(check_zero_one_exhaustive(&full.to_network()).is_sorting());
    }

    #[test]
    fn fraction_sorted_monotone_in_prefix_depth() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        let n = 16;
        let l = 4;
        let mut last = 0.0f64;
        for stages in [0usize, l * l / 2, 3 * l * l / 4, l * l] {
            let net = bitonic_prefix(n, stages).to_network();
            let f = fraction_sorted(&net, 3000, &mut rng);
            assert!(
                f + 0.05 >= last,
                "fraction sorted should not regress: {f} after {last} at {stages}"
            );
            last = f;
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    fn randomizing_block_is_a_permutation_network() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let net = randomizing_block(16, 4, &mut rng).to_network();
        assert_eq!(net.size(), 0, "swap/pass only — zero comparators");
        let input: Vec<u32> = (0..16).collect();
        let mut out = snet_core::ir::evaluate(&net, &input);
        out.sort_unstable();
        assert_eq!(out, input, "output is a permutation of the input");
    }

    #[test]
    fn randomizing_blocks_decorrelate_fixed_inputs() {
        // Different seeds send a fixed input to many different outputs.
        let n = 16;
        let input: Vec<u32> = (0..n as u32).rev().collect();
        let mut outputs = std::collections::BTreeSet::new();
        for seed in 0..40u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let net = randomizing_block(n, 8, &mut rng).to_network();
            outputs.insert(snet_core::ir::evaluate(&net, &input));
        }
        assert!(outputs.len() > 30, "got only {} distinct outputs", outputs.len());
    }

    #[test]
    fn randomized_then_bitonic_composes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        let net = randomized_then_bitonic(16, 4, 16, &mut rng);
        let out = snet_core::ir::evaluate(&net, &(0..16u32).rev().collect::<Vec<_>>());
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16u32).collect::<Vec<_>>());
    }
}
