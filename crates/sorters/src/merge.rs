//! Merging networks — the building blocks behind both Batcher sorters.
//!
//! * [`bitonic_merger`] — the all-`+` butterfly: sorts any *bitonic*
//!   sequence (and hence merges two sorted runs presented head-to-tail) in
//!   `lg n` levels. Structurally it is exactly the canonical reverse delta
//!   network (the identity the paper's Section 2 builds on).
//! * [`odd_even_merger`] — Batcher's odd-even merge of two sorted halves,
//!   also `lg n` levels but `Θ(n)` fewer comparators.

use snet_core::element::Element;
use snet_core::network::ComparatorNetwork;
use snet_topology::ReverseDelta;

/// The `lg n`-level bitonic merger (all-ascending butterfly) on `n = 2^l`
/// wires: sorts every bitonic input.
pub fn bitonic_merger(n: usize) -> ComparatorNetwork {
    assert!(n.is_power_of_two() && n >= 1);
    ReverseDelta::butterfly(n.trailing_zeros() as usize).to_network()
}

/// Batcher's odd-even merger on `n = 2^l` wires: merges two sorted halves
/// `[0, n/2)` and `[n/2, n)` into a sorted whole in `lg n` levels.
pub fn odd_even_merger(n: usize) -> ComparatorNetwork {
    assert!(n.is_power_of_two() && n >= 1);
    let mut net = ComparatorNetwork::empty(n);
    if n < 2 {
        return net;
    }
    // Iterative formulation: first compare (i, i + n/2); then for
    // p = n/4, n/8, …, 1 compare (i, i+p) for i in blocks where
    // ⌊i/p⌋ is odd … the classic odd-even merge schedule.
    let half = n / 2;
    net.push_elements((0..half).map(|i| Element::cmp(i as u32, (i + half) as u32)).collect())
        .expect("first merge level is disjoint");
    let mut p = half / 2;
    while p >= 1 {
        let elements: Vec<Element> = (0..n - p)
            .filter(|i| (i / p) % 2 == 1)
            .map(|i| Element::cmp(i as u32, (i + p) as u32))
            .collect();
        if !elements.is_empty() {
            net.push_elements(elements).expect("merge levels are disjoint");
        }
        p /= 2;
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::sortcheck::is_sorted;

    /// All 0-1 bitonic sequences of length n (cyclic rotations of a block
    /// of ones), plus ascending/descending value sequences.
    fn bitonic_01_inputs(n: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        for ones in 0..=n {
            for rot in 0..n {
                let mut v = vec![0u32; n];
                for k in 0..ones {
                    v[(rot + k) % n] = 1;
                }
                // A cyclic rotation of 1^a 0^b is bitonic exactly when the
                // ones form at most one wrap-around block — always true
                // here.
                out.push(v);
            }
        }
        out
    }

    #[test]
    fn bitonic_merger_sorts_all_01_bitonic_inputs() {
        for l in 1..=5usize {
            let n = 1 << l;
            let net = bitonic_merger(n);
            assert_eq!(net.depth(), l);
            let exec = snet_core::ir::Executor::compile(&net);
            for input in bitonic_01_inputs(n) {
                let out = exec.evaluate(&input);
                assert!(is_sorted(&out), "n={n}, input {input:?} → {out:?}");
            }
        }
    }

    #[test]
    fn bitonic_merger_sorts_updown_values() {
        // ascending run then descending run = bitonic.
        let net = bitonic_merger(8);
        let input = vec![1u32, 4, 6, 7, 8, 5, 3, 0];
        assert!(is_sorted(&snet_core::ir::evaluate(&net, &input)));
    }

    #[test]
    fn odd_even_merger_merges_sorted_halves() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for l in 1..=6usize {
            let n = 1 << l;
            let net = odd_even_merger(n);
            assert_eq!(net.depth(), l, "lg n merge levels");
            let exec = snet_core::ir::Executor::compile(&net);
            for _ in 0..50 {
                let mut a: Vec<u32> = (0..n as u32 / 2).map(|_| rng.gen_range(0..100)).collect();
                let mut b: Vec<u32> = (0..n as u32 / 2).map(|_| rng.gen_range(0..100)).collect();
                a.sort_unstable();
                b.sort_unstable();
                let input: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
                let out = exec.evaluate(&input);
                assert!(is_sorted(&out), "n={n}: {input:?} → {out:?}");
            }
        }
    }

    #[test]
    fn odd_even_merger_is_smaller_than_bitonic_merger() {
        for l in 2..=8usize {
            let n = 1 << l;
            assert!(odd_even_merger(n).size() < bitonic_merger(n).size(), "n={n}");
        }
    }

    #[test]
    fn mergers_do_not_sort_arbitrary_inputs() {
        // Neither merger is a sorting network on its own.
        let n = 8;
        for net in [bitonic_merger(n), odd_even_merger(n)] {
            assert!(!snet_core::sortcheck::check_zero_one_exhaustive(&net).is_sorting());
        }
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(bitonic_merger(1).depth(), 0);
        assert_eq!(odd_even_merger(1).depth(), 0);
        assert_eq!(odd_even_merger(2).size(), 1);
    }
}
