//! Batcher's bitonic sorting network — the `Θ(lg²n)` upper bound the paper
//! cites for shuffle-based sorting.
//!
//! Three constructions:
//!
//! * [`bitonic_circuit`] — the classic circuit: `lg n (lg n + 1)/2` levels,
//!   level `(p, q)` comparing pairs differing in bit `q` with direction
//!   chosen by bit `p+1` of the index;
//! * [`bitonic_flip`] — the *unidirectional* bitonic sorter: every element
//!   is a plain `+` comparator (min to the lower-indexed wire) and each
//!   merge phase opens with a **reversal layer** pairing wire `i` of a run
//!   with wire `k−1−i` instead of flipping comparator directions. Same
//!   depth and size as the circuit form. This is the layout of the
//!   Aspnes–Herlihy–Shavit bitonic *counting* network, which is why
//!   `snet-runtime` builds its balancer networks from these levels —
//!   direction-normalizing [`bitonic_circuit`] does **not** yield a
//!   counting network (see `snet-runtime`'s differential tests);
//! * [`bitonic_shuffle`] — the same sorter as a **genuine shuffle-based
//!   network** (`Π_i = σ` everywhere, Stone's embedding): each merge phase
//!   becomes one block of `lg n` shuffle stages, with the early stages of a
//!   phase idling (`Pass`) until the descending bit order of the shuffle
//!   (`lg n − 1, …, 1, 0`) reaches the phase's first comparison bit. The
//!   comparator depth is exactly `lg n (lg n + 1)/2`; idle stages cost no
//!   comparator depth.
//!
//! `bitonic_shuffle(n).to_iterated_reverse_delta()` is the canonical
//! nontrivial input for the Section 4 adversary experiments: a *sorting*
//! network in the class, whose prefixes the adversary refutes.

use snet_core::element::{Element, ElementKind};
use snet_core::network::ComparatorNetwork;
use snet_topology::ShuffleNetwork;

/// The classic bitonic sorting circuit on `n = 2^l` wires:
/// depth `l(l+1)/2`, size `n·l(l+1)/4`.
pub fn bitonic_circuit(n: usize) -> ComparatorNetwork {
    assert!(n.is_power_of_two() && n >= 1);
    let mut net = ComparatorNetwork::empty(n);
    let mut k = 2usize;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            let mut elements = Vec::with_capacity(n / 2);
            for i in 0..n {
                let partner = i ^ j;
                if partner > i {
                    // Ascending iff bit `k` of i is clear.
                    let kind = if i & k == 0 { ElementKind::Cmp } else { ElementKind::CmpRev };
                    elements.push(Element { a: i as u32, b: partner as u32, kind });
                }
            }
            net.push_elements(elements).expect("bitonic levels are wire-disjoint");
            j /= 2;
        }
        k *= 2;
    }
    net
}

/// The unidirectional bitonic sorter on `n = 2^l` wires: identical
/// depth/size profile to [`bitonic_circuit`], but every element is a plain
/// `+` comparator. Phase `p` merges runs of length `k = 2^{p+1}` by first
/// pairing wire `base+i` with its reflection `base+k−1−i` (the layer that
/// replaces the circuit form's `-` comparators), then running the butterfly
/// half-cleaners `(i, i+s/2)` for `s = k/2, k/4, …, 2` inside each run.
///
/// Replacing each comparator with a balancer (top output = wire `a`) turns
/// this network into the Aspnes–Herlihy–Shavit bitonic counting network —
/// the construction `snet_runtime::CountingNetwork::bitonic` reuses.
pub fn bitonic_flip(n: usize) -> ComparatorNetwork {
    assert!(n.is_power_of_two() && n >= 1);
    let mut net = ComparatorNetwork::empty(n);
    let mut k = 2usize;
    while k <= n {
        let mut reversal = Vec::with_capacity(n / 2);
        for base in (0..n).step_by(k) {
            for i in 0..k / 2 {
                reversal.push(Element::cmp((base + i) as u32, (base + k - 1 - i) as u32));
            }
        }
        net.push_elements(reversal).expect("reflection pairs are wire-disjoint");
        let mut s = k / 2;
        while s > 1 {
            let mut cleaners = Vec::with_capacity(n / 2);
            for base in (0..n).step_by(s) {
                for i in 0..s / 2 {
                    cleaners.push(Element::cmp((base + i) as u32, (base + i + s / 2) as u32));
                }
            }
            net.push_elements(cleaners).expect("half-cleaner pairs are wire-disjoint");
            s /= 2;
        }
        k *= 2;
    }
    net
}

/// Batcher's bitonic sorter as a shuffle-based network (`Π_i = σ` for every
/// stage): `lg²n` stages of which `lg n (lg n + 1)/2` contain comparators.
pub fn bitonic_shuffle(n: usize) -> ShuffleNetwork {
    assert!(n.is_power_of_two() && n >= 2);
    let l = n.trailing_zeros() as usize;
    let rotr = |x: u32, i: usize| -> u32 {
        let i = i % l;
        if i == 0 {
            x
        } else {
            ((x >> i) | (x << (l - i))) & (n as u32 - 1)
        }
    };
    let mut stages: Vec<Vec<ElementKind>> = Vec::with_capacity(l * l);
    // Phase p ∈ 0..l sorts runs of length 2^{p+1}; it needs comparisons on
    // bits p, p-1, …, 0, which the shuffle's descending bit order reaches at
    // in-block stages i = l-p .. l (stage i pairs bit l-i).
    for p in 0..l {
        let k = 1usize << (p + 1);
        for i in 1..=l {
            let q = l - i; // bit compared by in-block stage i
            if q > p {
                stages.push(vec![ElementKind::Pass; n / 2]);
                continue;
            }
            let stage: Vec<ElementKind> = (0..n / 2)
                .map(|kk| {
                    // Register pair (2kk, 2kk+1) sits, in the fixed frame,
                    // on wires (rotr^i(2kk), rotr^i(2kk+1)); the first has
                    // bit q clear. Direction by bit `k` of that wire, min
                    // towards it when ascending — matching the circuit.
                    let w = rotr(2 * kk as u32, i);
                    debug_assert_eq!(w & (1 << q), 0);
                    if (w as usize) & k == 0 {
                        ElementKind::Cmp
                    } else {
                        ElementKind::CmpRev
                    }
                })
                .collect();
            stages.push(stage);
        }
    }
    ShuffleNetwork::new(n, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use snet_core::perm::Permutation;
    use snet_core::sortcheck::{check_zero_one_exhaustive, is_sorted};

    #[test]
    fn circuit_sorts_exhaustively() {
        for l in 0..=4usize {
            let n = 1 << l;
            let net = bitonic_circuit(n);
            assert!(check_zero_one_exhaustive(&net).is_sorting(), "n={n}");
        }
    }

    #[test]
    fn circuit_depth_and_size() {
        for l in 1..=6usize {
            let n = 1 << l;
            let net = bitonic_circuit(n);
            assert_eq!(net.depth(), l * (l + 1) / 2, "depth at n={n}");
            assert_eq!(net.size(), n * l * (l + 1) / 4, "size at n={n}");
        }
    }

    #[test]
    fn flip_form_sorts_exhaustively() {
        for l in 0..=4usize {
            let n = 1 << l;
            let net = bitonic_flip(n);
            assert!(check_zero_one_exhaustive(&net).is_sorting(), "n={n}");
        }
    }

    #[test]
    fn flip_form_matches_circuit_profile_and_is_unidirectional() {
        for l in 1..=6usize {
            let n = 1 << l;
            let net = bitonic_flip(n);
            let circuit = bitonic_circuit(n);
            assert_eq!(net.depth(), circuit.depth(), "depth at n={n}");
            assert_eq!(net.size(), circuit.size(), "size at n={n}");
            for level in net.levels() {
                assert!(level.route.is_none());
                for e in &level.elements {
                    assert_eq!(e.kind, ElementKind::Cmp, "all elements are plain + comparators");
                    assert!(e.a < e.b, "min output on the lower-indexed wire");
                }
            }
        }
    }

    #[test]
    fn shuffle_form_sorts_exhaustively() {
        for l in 1..=4usize {
            let n = 1 << l;
            let net = bitonic_shuffle(n).to_network();
            assert!(check_zero_one_exhaustive(&net).is_sorting(), "n={n}");
        }
    }

    #[test]
    fn shuffle_form_sorts_random_large() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for l in [5usize, 6, 8] {
            let n = 1 << l;
            let net = bitonic_shuffle(n).to_network();
            let exec = snet_core::ir::Executor::compile(&net);
            for _ in 0..20 {
                let input: Vec<u32> = Permutation::random(n, &mut rng).images().to_vec();
                assert!(is_sorted(&exec.evaluate(&input)), "n={n}");
            }
        }
    }

    #[test]
    fn shuffle_form_matches_circuit_behaviour() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(56);
        for l in 2..=5usize {
            let n = 1 << l;
            let circuit = snet_core::ir::Executor::compile(&bitonic_circuit(n));
            let shuffled = snet_core::ir::Executor::compile(&bitonic_shuffle(n).to_network());
            for _ in 0..30 {
                let input: Vec<u32> = Permutation::random(n, &mut rng).images().to_vec();
                assert_eq!(circuit.evaluate(&input), shuffled.evaluate(&input), "n={n}");
            }
        }
    }

    #[test]
    fn shuffle_form_comparator_depth_is_batcher() {
        for l in 1..=8usize {
            let n = 1 << l;
            let sn = bitonic_shuffle(n);
            assert_eq!(sn.depth(), l * l, "total stages");
            let net = sn.to_network();
            assert_eq!(net.comparator_depth(), l * (l + 1) / 2, "comparator stages");
        }
    }

    #[test]
    fn embeds_into_iterated_reverse_delta() {
        let n = 16;
        let sn = bitonic_shuffle(n);
        let ird = sn.to_iterated_reverse_delta();
        assert_eq!(ird.block_count(), 4, "one block per merge phase");
        assert!(ird.post_route().is_none());
        // The embedding is behaviour-preserving (spot check).
        let mut rng = rand::rngs::StdRng::seed_from_u64(57);
        let net_a = snet_core::ir::Executor::compile(&sn.to_network());
        let net_b = snet_core::ir::Executor::compile(&ird.to_network());
        for _ in 0..20 {
            let input: Vec<u32> = Permutation::random(n, &mut rng).images().to_vec();
            assert_eq!(net_a.evaluate(&input), net_b.evaluate(&input));
        }
    }
}
